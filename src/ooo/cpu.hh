/**
 * @file
 * Cycle-level out-of-order superscalar CPU timing model.
 *
 * Timing-directed, oracle-functional: the CPU consumes a pre-computed
 * DynamicTrace (resolved branch outcomes and effective addresses) and
 * simulates the pipeline cycle by cycle — fetch with branch prediction,
 * rename onto a unified physical register file, dispatch into ROB/IQ/LSQ,
 * wakeup-select issue with a pluggable priority policy, functional-unit
 * timing, store-set memory dependence speculation with violation squash
 * and replay, and in-order commit.
 *
 * Branch mispredictions are modelled as front-end stalls until the branch
 * resolves plus a redirect penalty (wrong-path instructions do not execute,
 * which is the standard approximation in trace-driven simulation). Memory
 * order violations squash and replay the oracle trace from the violating
 * load.
 */

#ifndef DYNASPAM_OOO_CPU_HH
#define DYNASPAM_OOO_CPU_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/trace.hh"
#include "memory/cache.hh"
#include "ooo/bpred.hh"
#include "ooo/dyninst.hh"
#include "ooo/hooks.hh"
#include "ooo/params.hh"
#include "ooo/policy.hh"
#include "ooo/storesets.hh"

namespace dynaspam::check
{
class OooAuditor;
class FaultInjector;
} // namespace dynaspam::check

namespace dynaspam::trace
{
class TraceSink;
} // namespace dynaspam::trace

namespace dynaspam::ooo
{

/**
 * Observer of architectural commits and cycle boundaries. Installed by
 * the verification layer (src/check) in checked runs; a null observer
 * costs one predictable branch per commit/cycle.
 */
class CommitObserver
{
  public:
    virtual ~CommitObserver() = default;

    /** Oracle records [first_idx, first_idx+count) committed atomically.
     *  @p via_fabric marks fat trace-invocation (ROB') commits. */
    virtual void onCommit(SeqNum first_idx, std::uint32_t count,
                          bool via_fabric, Cycle now) = 0;

    /** All pipeline stages of cycle @p now have run. */
    virtual void onCycleEnd(Cycle now) = 0;
};

/** Aggregate timing/energy-relevant event counts for one simulation. */
struct PipelineStats
{
    std::uint64_t cycles = 0;
    std::uint64_t fetchedInsts = 0;
    std::uint64_t renamedInsts = 0;
    std::uint64_t dispatchedInsts = 0;
    std::uint64_t issuedInsts = 0;
    std::uint64_t committedInsts = 0;   ///< program insts (incl. offloaded)
    std::uint64_t committedOnHost = 0;  ///< committed via the host back-end
    std::uint64_t squashedInsts = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t memOrderViolations = 0;
    std::uint64_t regReads = 0;
    std::uint64_t regWrites = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t iqWakeups = 0;
    std::uint64_t fuOps[unsigned(isa::FuType::NUM_FU_TYPES)] = {};
    std::uint64_t loadForwards = 0;
    std::uint64_t icacheAccesses = 0;
    std::uint64_t dcacheAccesses = 0;
    std::uint64_t robWrites = 0;
    std::uint64_t robReads = 0;
    std::uint64_t invocationsCommitted = 0;
    std::uint64_t invocationsSquashed = 0;
    std::uint64_t mappingInstsExecuted = 0;

    bool operator==(const PipelineStats &) const = default;
};

/**
 * The out-of-order CPU. One instance simulates one complete program run
 * over a given oracle trace.
 */
class OooCpu
{
  public:
    /**
     * @param params pipeline configuration (Table 4 defaults)
     * @param trace oracle dynamic trace to simulate
     * @param hierarchy cache hierarchy (timing only)
     */
    OooCpu(const OooParams &params, const isa::DynamicTrace &trace,
           mem::MemoryHierarchy &hierarchy);
    ~OooCpu();

    OooCpu(const OooCpu &) = delete;
    OooCpu &operator=(const OooCpu &) = delete;

    /** Attach the DynaSpAM controller (nullptr detaches). */
    void setHooks(TraceHooks *hooks) { traceHooks = hooks; }

    /** Attach a commit/cycle observer (nullptr detaches). Used by the
     *  verification layer for golden-model lockstep and auditing. */
    void setCommitObserver(CommitObserver *obs) { observer = obs; }

    /** Attach an event-trace sink (nullptr detaches). The sink records
     *  one event per committed or squashed ROB entry, from timestamps
     *  the pipeline tracks anyway — attaching it cannot perturb timing. */
    void setTraceSink(trace::TraceSink *sink) { tsink = sink; }

    /**
     * Replace the issue-select policy for the whole run (ablation and
     * test use; DynaSpAM installs its policy per mapping phase through
     * the hooks instead). Pass nullptr to restore oldest-first.
     */
    void
    setSelectPolicyForTesting(SelectPolicy *policy)
    {
        activePolicy = policy ? policy : &defaultPolicy;
    }

    /** Run until the whole trace commits. @return total cycles. */
    Cycle run();

    /** Advance one cycle (exposed for unit tests). */
    void tick();

    /** @return true when every oracle record has committed. */
    bool done() const { return commitIdx >= trace.size(); }

    Cycle now() const { return curCycle; }
    const PipelineStats &stats() const { return pstats; }
    BranchPredictor &branchPredictor() { return bpred; }
    StoreSetPredictor &storeSetPredictor() { return storeSets; }
    const OooParams &config() const { return params; }

    /** Export statistics into @p registry under the "ooo." prefix. */
    void exportStats(StatRegistry &registry) const;

    /** Dump pipeline occupancy and control state (debugging aid). */
    void dumpState(std::ostream &os) const;

  private:
    /** The invariant auditors inspect pipeline internals directly. */
    friend class dynaspam::check::OooAuditor;
    /** The fault-injection self-test seeds violations directly. */
    friend class dynaspam::check::FaultInjector;

    // --- Front-end entry awaiting rename ---
    struct FrontEndInst
    {
        SeqNum traceIdx = 0;
        Cycle readyAtRename = 0;    ///< models fetch/decode latency
        bool mispredicted = false;
        bool predictedTaken = false;
        RasCheckpoint rasCp;        ///< RAS state before this fetch
        bool mappingInst = false;   ///< part of a trace being mapped
        bool firstMappingInst = false;
        bool lastMappingInst = false;
        // Trace invocation pseudo-op (RobKind::TraceInvoke) fields.
        bool isInvocation = false;
        std::uint32_t numRecords = 0;
        std::vector<RegIndex> liveIns;
        std::vector<RegIndex> liveOuts;
        bool hasStores = false;

        bool operator==(const FrontEndInst &) const = default;
    };

    /** Per-invocation rename/issue bookkeeping. */
    struct InvocationState
    {
        std::vector<RegIndex> liveInPhys;
        std::vector<RegIndex> liveOutArch;
        std::vector<RegIndex> liveOutPhys;
        std::vector<RegIndex> liveOutPrevPhys;
        bool hasStores = false;
        bool resolved = false;
        InvocationResult result;

        bool operator==(const InvocationState &) const = default;
    };

    /**
     * Age-ordered slab of in-flight invocation states. Invocations
     * allocate at dispatch (strictly increasing seq), retire from the
     * front (in-order commit) and squash from the back, so a deque of
     * (seq, state) pairs replaces the former std::map: O(1) at both
     * ends, contiguous iteration, no per-node allocation.
     */
    class InvocationTable
    {
      public:
        using Entry = std::pair<SeqNum, InvocationState>;

        bool empty() const { return slots.empty(); }
        std::size_t size() const { return slots.size(); }
        auto begin() { return slots.begin(); }
        auto end() { return slots.end(); }
        auto begin() const { return slots.begin(); }
        auto end() const { return slots.end(); }

        InvocationState *
        find(SeqNum seq)
        {
            for (Entry &e : slots) {
                if (e.first == seq)
                    return &e.second;
                if (e.first > seq)
                    break;
            }
            return nullptr;
        }

        std::size_t
        count(SeqNum seq) const
        {
            for (const Entry &e : slots) {
                if (e.first == seq)
                    return 1;
                if (e.first > seq)
                    break;
            }
            return 0;
        }

        void
        emplace(SeqNum seq, InvocationState inv)
        {
            slots.emplace_back(seq, std::move(inv));
        }

        void
        erase(SeqNum seq)
        {
            if (!slots.empty() && slots.front().first == seq) {
                slots.pop_front();
            } else if (!slots.empty() && slots.back().first == seq) {
                slots.pop_back();
            } else {
                for (auto it = slots.begin(); it != slots.end(); ++it) {
                    if (it->first == seq) {
                        slots.erase(it);
                        return;
                    }
                }
            }
        }

        bool operator==(const InvocationTable &) const = default;

      private:
        std::deque<Entry> slots;
    };

    // Stage functions, called in reverse pipeline order each tick.
    void commitStage();
    void executeStage();
    void issueStage();
    void renameStage();
    void fetchStage();

    // Helpers.
    DynInst &robAt(SeqNum seq);
    const DynInst *robFind(SeqNum seq) const;
    bool isInstReady(const DynInst &inst) const;
    bool olderStoresAllComplete(const DynInst &load) const;
    void issueLoad(DynInst &load);
    void issueStore(DynInst &store);
    void checkViolations(const DynInst &store);
    void squashFrom(SeqNum seq, SeqNum resume_trace_idx, Cycle restart);
    void abortActiveMapping();
    void startReadyInvocations();
    Cycle physReady(RegIndex phys) const;

    // Wakeup-driven scheduler (see the comment at the member block).
    void scheduleAtDispatch(DynInst &d);
    void wakeConsumers(RegIndex phys);
    void drainPendingWakeups();
    void scrubSchedulerForSquash(SeqNum bound);
    bool loadMemoryReady(const DynInst &load);
    SeqNum incompleteStoreBound();

    /** Cacheline granularity of the LSQ address index. */
    static constexpr unsigned lsqLineShift = 6;
    static Addr lsqLine(Addr addr) { return addr >> lsqLineShift; }

    /** Address-keyed index over an LSQ queue: line -> age-ordered seqs. */
    using LsqIndex = std::unordered_map<Addr, std::vector<SeqNum>>;

    OooParams params;
    const isa::DynamicTrace &trace;
    mem::MemoryHierarchy &hierarchy;

    BranchPredictor bpred;
    StoreSetPredictor storeSets;
    OldestFirstPolicy defaultPolicy;
    SelectPolicy *activePolicy;     ///< never null
    TraceHooks *traceHooks = nullptr;
    CommitObserver *observer = nullptr;
    trace::TraceSink *tsink = nullptr;

    Cycle curCycle = 0;
    SeqNum nextSeq = 1;             ///< 0 reserved as "no instruction"
    SeqNum fetchIdx = 0;            ///< next oracle record to fetch
    SeqNum commitIdx = 0;           ///< next oracle record to commit
    Cycle fetchResumeCycle = 0;     ///< fetch blocked until this cycle
    bool fetchBlockedOnBranch = false;  ///< waiting for mispredict resolve
    Addr lastFetchBlock = ~Addr(0);

    std::deque<FrontEndInst> frontEnd;
    std::size_t frontEndCap;

    // Rename state.
    std::vector<RegIndex> rat;              ///< arch -> phys
    std::vector<RegIndex> freeList;
    std::vector<Cycle> physReadyCycle;      ///< CYCLE_INVALID = not ready

    // Back-end structures.
    std::deque<DynInst> rob;                ///< contiguous seq numbers
    std::vector<SeqNum> iq;                 ///< membership set, unordered
    std::deque<SeqNum> loadQueue;
    std::deque<SeqNum> storeQueue;
    InvocationTable invocations;

    /**
     * Wakeup-driven scheduler state. Dispatch either enqueues an
     * instruction on pendingByType (all source values known) or parks
     * it on its producers' consumer lists; the last producer to issue
     * moves it to pending, and issueStage drains matured pending
     * entries into readyByType before selecting. The select loop thus
     * touches only ready instructions instead of rescanning the whole
     * IQ once per FU slot — cost scales with activity, not capacity.
     * Selection order is made irrelevant by the explicit
     * (score, oldest-seq) tie-break, so reports stay byte-identical
     * to the scan-based engine.
     */
    struct PendingWakeup
    {
        Cycle readyCycle = 0;   ///< max source-ready cycle, may be future
        SeqNum seq = 0;

        bool operator==(const PendingWakeup &) const = default;
    };
    std::vector<std::vector<SeqNum>> readyByType;       ///< per FU type
    std::vector<std::vector<PendingWakeup>> pendingByType;
    std::vector<std::vector<SeqNum>> regConsumers;      ///< per phys reg
    std::size_t readyCount = 0;
    std::size_t pendingCount = 0;
    unsigned fuTypeOffsets[unsigned(isa::FuType::NUM_FU_TYPES)] = {};

    // Cacheline-granular LSQ address index: disambiguation and
    // forwarding probe only same-line entries, in age order, instead of
    // walking the full queues per memory op.
    LsqIndex storesByLine;
    LsqIndex loadsByLine;

    /** Per-cycle cache of the oldest incomplete store's seq (used by
     *  the no-speculation load-readiness rule). CYCLE_INVALID = stale. */
    Cycle sqBoundCycle = CYCLE_INVALID;
    SeqNum sqBound = 0;

    /** Post-commit store buffer: recently committed stores remain
     *  visible for store-to-load forwarding while they drain. */
    struct RetiredStore
    {
        Addr addr = 0;
        Cycle dataReady = 0;
        SeqNum seq = 0;

        bool operator==(const RetiredStore &) const = default;
    };
    std::deque<RetiredStore> storeBuffer;
    std::unordered_map<Addr, std::vector<RetiredStore>> retiredByLine;
    static constexpr std::size_t storeBufferEntries = 16;

    /** Reused live-in arrival scratch for startReadyInvocations(). */
    std::vector<Cycle> arrivalScratch;

    // FU pool: busy-until cycle per unit, grouped by type.
    std::vector<std::vector<Cycle>> fuBusyUntil;

    // Mapping-phase state. Fetch marks trace records; the first trace
    // instruction stalls in rename until the back-end drains; the policy
    // is active from first dispatch until last trace-instruction issue.
    bool mappingActive = false;
    SeqNum mappingTraceIdx = 0;
    SelectPolicy *pendingMappingPolicy = nullptr;
    std::uint32_t mappingFetchRemaining = 0;  ///< records left to mark
    std::uint32_t mappingDispatchRemaining = 0; ///< marked, not dispatched
    std::uint32_t mappingIssueRemaining = 0;  ///< dispatched, not issued
    std::uint32_t mappingCommitRemaining = 0; ///< dispatched, not committed

    PipelineStats pstats;

  public:
    /**
     * Complete mutable pipeline state for simulator snapshots. Excludes
     * construction-time configuration (params, table geometries, FU
     * offsets) and the attached hooks/observer/sink, which the restore
     * target must already share; restore() requires a CPU built over the
     * same trace with the same OooParams. DynInst pointer members stay
     * valid because both sides reference the same immutable
     * Program/DynamicTrace. The two policy pointers are encoded as
     * "default or the (single) externally-owned mapping policy" and
     * rebound by restore().
     */
    struct SavedState
    {
        BranchPredictor::SavedState bpred;
        StoreSetPredictor::SavedState storeSets;
        bool activeIsDefault = true;    ///< activePolicy == &defaultPolicy
        bool pendingIsNull = true;      ///< pendingMappingPolicy == nullptr

        Cycle curCycle = 0;
        SeqNum nextSeq = 1;
        SeqNum fetchIdx = 0;
        SeqNum commitIdx = 0;
        Cycle fetchResumeCycle = 0;
        bool fetchBlockedOnBranch = false;
        Addr lastFetchBlock = ~Addr(0);
        std::deque<FrontEndInst> frontEnd;

        std::vector<RegIndex> rat;
        std::vector<RegIndex> freeList;
        std::vector<Cycle> physReadyCycle;

        std::deque<DynInst> rob;
        std::vector<SeqNum> iq;
        std::deque<SeqNum> loadQueue;
        std::deque<SeqNum> storeQueue;
        InvocationTable invocations;

        std::vector<std::vector<SeqNum>> readyByType;
        std::vector<std::vector<PendingWakeup>> pendingByType;
        std::vector<std::vector<SeqNum>> regConsumers;
        std::size_t readyCount = 0;
        std::size_t pendingCount = 0;

        LsqIndex storesByLine;
        LsqIndex loadsByLine;
        Cycle sqBoundCycle = CYCLE_INVALID;
        SeqNum sqBound = 0;
        std::deque<RetiredStore> storeBuffer;
        std::unordered_map<Addr, std::vector<RetiredStore>> retiredByLine;

        std::vector<std::vector<Cycle>> fuBusyUntil;

        bool mappingActive = false;
        SeqNum mappingTraceIdx = 0;
        std::uint32_t mappingFetchRemaining = 0;
        std::uint32_t mappingDispatchRemaining = 0;
        std::uint32_t mappingIssueRemaining = 0;
        std::uint32_t mappingCommitRemaining = 0;

        PipelineStats pstats;

        bool operator==(const SavedState &) const = default;
    };

    /** Capture the full pipeline state into @p out (reuses capacity). */
    void save(SavedState &out) const;

    /**
     * Restore a previously saved state. @p mapping_policy is the
     * externally-owned policy both policy pointers rebind to when the
     * saved state had one armed (the DynaSpAM controller's resource-aware
     * policy); may be null when the state has activeIsDefault and
     * pendingIsNull.
     */
    void restore(const SavedState &in, SelectPolicy *mapping_policy);
};

} // namespace dynaspam::ooo

#endif // DYNASPAM_OOO_CPU_HH
