/**
 * @file
 * Tournament branch predictor implementation.
 */

#include "ooo/bpred.hh"

#include "common/logging.hh"
#include "isa/opcodes.hh"

namespace dynaspam::ooo
{

BranchPredictor::BranchPredictor(const BPredParams &p)
    : params(p),
      localTable(p.localEntries, 1),
      globalTable(p.globalEntries, 1),
      chooserTable(p.chooserEntries, 2),
      btb(p.btbEntries),
      ras(p.rasEntries, 0)
{
    if (!p.localEntries || !p.globalEntries || !p.chooserEntries ||
        !p.btbEntries || !p.rasEntries) {
        fatal("branch predictor tables must be non-empty");
    }
}

std::uint8_t
BranchPredictor::bump(std::uint8_t c, bool up)
{
    if (up)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

std::size_t
BranchPredictor::localIndex(InstAddr pc) const
{
    return pc % params.localEntries;
}

std::size_t
BranchPredictor::globalIndex(InstAddr pc, std::uint64_t history) const
{
    const std::uint64_t mask = bits::mask(params.historyBits);
    return (pc ^ (history & mask)) % params.globalEntries;
}

std::size_t
BranchPredictor::chooserIndex(InstAddr pc) const
{
    return pc % params.chooserEntries;
}

std::size_t
BranchPredictor::btbIndex(InstAddr pc) const
{
    return pc % params.btbEntries;
}

bool
BranchPredictor::predictDirection(InstAddr pc, std::uint64_t history) const
{
    const bool local_taken = counterTaken(localTable[localIndex(pc)]);
    const bool global_taken =
        counterTaken(globalTable[globalIndex(pc, history)]);
    const bool use_global = chooserTable[chooserIndex(pc)] >= 2;
    return use_global ? global_taken : local_taken;
}

BPrediction
BranchPredictor::peek(InstAddr pc, const isa::StaticInst &inst) const
{
    BPrediction pred;
    using isa::Opcode;

    if (inst.op == Opcode::RET) {
        pred.taken = true;
        if (rasTop > 0) {
            pred.targetKnown = true;
            pred.target = ras[rasTop - 1];
        }
        return pred;
    }

    if (!inst.isCondBranch()) {
        // JMP / CALL: always taken, target from the instruction itself
        // (direct targets are known at decode).
        pred.taken = true;
        pred.targetKnown = true;
        pred.target = InstAddr(inst.imm);
        return pred;
    }

    pred.taken = predictDirection(pc, specHistory);
    const BtbEntry &entry = btb[btbIndex(pc)];
    if (entry.pc == pc) {
        pred.targetKnown = true;
        pred.target = entry.target;
    }
    return pred;
}

BPrediction
BranchPredictor::peekWithHistory(InstAddr pc, const isa::StaticInst &inst,
                                 std::uint64_t history) const
{
    BPrediction pred;
    using isa::Opcode;

    if (inst.op == Opcode::RET) {
        pred.taken = true;
        pred.targetKnown = false;
        return pred;
    }
    if (!inst.isCondBranch()) {
        pred.taken = true;
        pred.targetKnown = true;
        pred.target = InstAddr(inst.imm);
        return pred;
    }
    pred.taken = predictDirection(pc, history);
    const BtbEntry &entry = btb[btbIndex(pc)];
    if (entry.pc == pc) {
        pred.targetKnown = true;
        pred.target = entry.target;
    }
    return pred;
}

BPrediction
BranchPredictor::predict(InstAddr pc, const isa::StaticInst &inst)
{
    statLookups++;
    BPrediction pred = peek(pc, inst);

    using isa::Opcode;
    if (inst.op == Opcode::CALL) {
        // Push the return address.
        if (rasTop < ras.size())
            ras[rasTop++] = pc + 1;
        else {
            // Overflow: rotate (oldest entry lost).
            for (std::size_t i = 1; i < ras.size(); i++)
                ras[i - 1] = ras[i];
            ras[ras.size() - 1] = pc + 1;
        }
    } else if (inst.op == Opcode::RET) {
        if (rasTop > 0)
            rasTop--;
    }

    if (inst.isCondBranch())
        specHistory = (specHistory << 1) | (pred.taken ? 1 : 0);

    return pred;
}

void
BranchPredictor::update(InstAddr pc, const isa::StaticInst &inst, bool taken,
                        InstAddr target, bool mispredicted)
{
    if (mispredicted)
        statMispredicts++;

    if (inst.isCondBranch()) {
        const std::size_t li = localIndex(pc);
        const std::size_t gi = globalIndex(pc, archHistory);
        const std::size_t ci = chooserIndex(pc);

        const bool local_correct = counterTaken(localTable[li]) == taken;
        const bool global_correct = counterTaken(globalTable[gi]) == taken;
        if (local_correct != global_correct)
            chooserTable[ci] = bump(chooserTable[ci], global_correct);

        localTable[li] = bump(localTable[li], taken);
        globalTable[gi] = bump(globalTable[gi], taken);

        archHistory = (archHistory << 1) | (taken ? 1 : 0);
        if (mispredicted) {
            // Resynchronize the speculative history. Fetch already
            // repaired the wrong bit via fixupLastHistoryBit(); this
            // catches standalone users and bounds drift after deep
            // speculation.
            specHistory = archHistory;
        }
    }

    if (taken && inst.op != isa::Opcode::RET) {
        BtbEntry &entry = btb[btbIndex(pc)];
        entry.pc = pc;
        entry.target = target;
    }
}

} // namespace dynaspam::ooo
