/**
 * @file
 * Integration surface between the host OOO pipeline and the DynaSpAM
 * trace controller (src/core). The pipeline is fully functional with no
 * hooks installed; DynaSpAM attaches through this interface to observe
 * branch commits (trace detection), steer fetch (mapping / offloading),
 * and execute fat atomic trace invocations on the spatial fabric.
 */

#ifndef DYNASPAM_OOO_HOOKS_HH
#define DYNASPAM_OOO_HOOKS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"

namespace dynaspam::ooo
{

class SelectPolicy;

/** What fetch should do with the upcoming oracle records. */
struct FetchDirective
{
    enum class Kind : std::uint8_t
    {
        Normal,         ///< fetch the record as an ordinary instruction
        BeginMapping,   ///< next N records are trace instructions to map
        Offload,        ///< next N records run on the fabric as one
                        ///< fat atomic invocation
    };

    Kind kind = Kind::Normal;
    std::uint32_t numRecords = 0;

    /** BeginMapping: resource-aware policy to install during mapping. */
    SelectPolicy *policy = nullptr;

    /** Offload: architectural live-in/live-out registers of the trace. */
    std::vector<RegIndex> liveIns;
    std::vector<RegIndex> liveOuts;

    /** Offload: the trace contains store instructions. Younger host loads
     *  conservatively wait for the invocation to resolve. */
    bool hasStores = false;
};

/** Outcome of a fabric trace invocation, computed by the offload engine. */
struct InvocationResult
{
    /**
     * True when the invocation must be squashed: a branch inside the trace
     * resolved off the mapped path, or a memory-order violation occurred.
     */
    bool squashed = false;

    /**
     * Cycle at which the invocation finished: all live-outs, branch
     * results and stores delivered (or the squash was detected).
     */
    Cycle completeCycle = 0;

    /**
     * Ready cycle for each live-out architectural register, parallel to
     * FetchDirective::liveOuts. Empty when squashed.
     */
    std::vector<Cycle> liveOutReady;

    /** Stores the invocation performed: (address, pc). The pipeline uses
     *  these to catch younger host loads that speculatively read the
     *  locations before the invocation wrote them. */
    std::vector<std::pair<Addr, InstAddr>> storeEvents;

    bool operator==(const InvocationResult &) const = default;
};

/**
 * Callbacks implemented by the DynaSpAM controller. All methods have
 * benign defaults so partial implementations (and the plain baseline,
 * which installs no hooks at all) work.
 */
class TraceHooks
{
  public:
    virtual ~TraceHooks() = default;

    /**
     * Fetch is about to process the oracle record at @p trace_idx.
     * Consulted once per record (and again after squash-replay).
     */
    virtual FetchDirective
    beforeFetch(SeqNum trace_idx, Cycle now)
    {
        (void)trace_idx;
        (void)now;
        return {};
    }

    /** The first trace instruction dispatched; mapping is underway. */
    virtual void mappingStarted(SeqNum trace_idx, Cycle now)
    {
        (void)trace_idx;
        (void)now;
    }

    /** Every trace instruction completed writeback; mapping succeeded. */
    virtual void mappingFinished(SeqNum trace_idx, Cycle now)
    {
        (void)trace_idx;
        (void)now;
    }

    /** A squash removed in-flight trace instructions; mapping aborted. */
    virtual void mappingAborted(SeqNum trace_idx, Cycle now)
    {
        (void)trace_idx;
        (void)now;
    }

    /**
     * All live-in values of the invocation dispatched at @p trace_idx are
     * (or will be) available; execute it on the fabric.
     *
     * @param trace_idx first oracle record of the invocation
     * @param num_records records covered by the invocation
     * @param now cycle the pipeline delivers the request
     * @param live_in_ready per-live-in value arrival cycles, parallel to
     *                      the directive's liveIns vector
     * @param mem_safe cycle by which all older host-pipeline stores have
     *                 completed; fabric memory operations must not access
     *                 memory earlier
     * @return the invocation's timing and squash outcome
     */
    virtual InvocationResult
    offloadStart(SeqNum trace_idx, std::uint32_t num_records, Cycle now,
                 const std::vector<Cycle> &live_in_ready, Cycle mem_safe)
    {
        (void)trace_idx;
        (void)num_records;
        (void)live_in_ready;
        (void)mem_safe;
        InvocationResult result;
        result.completeCycle = now + 1;
        return result;
    }

    /** The invocation committed atomically at ROB head. */
    virtual void invocationCommitted(SeqNum trace_idx, Cycle now)
    {
        (void)trace_idx;
        (void)now;
    }

    /**
     * The invocation was squashed.
     * @param at_fault true when the invocation itself squashed (branch
     *        mismatch or memory violation) — the host must execute its
     *        records; false when it was collateral damage of an older
     *        squash and may be re-offloaded on replay.
     */
    virtual void invocationSquashed(SeqNum trace_idx, Cycle now,
                                    bool at_fault)
    {
        (void)trace_idx;
        (void)now;
        (void)at_fault;
    }

    /** A control instruction committed; used for T-Cache training. */
    virtual void
    onCommitControl(InstAddr pc, bool taken, SeqNum trace_idx, Cycle now)
    {
        (void)pc;
        (void)taken;
        (void)trace_idx;
        (void)now;
    }
};

} // namespace dynaspam::ooo

#endif // DYNASPAM_OOO_HOOKS_HH
