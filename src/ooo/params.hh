/**
 * @file
 * Configuration of the out-of-order pipeline, defaulted to the paper's
 * Table 4 evaluation system parameters.
 */

#ifndef DYNASPAM_OOO_PARAMS_HH
#define DYNASPAM_OOO_PARAMS_HH

#include <cstdint>

#include "common/types.hh"
#include "ooo/bpred.hh"
#include "ooo/storesets.hh"

namespace dynaspam::ooo
{

/** Functional unit counts per type (Table 4: execution units). */
struct FuPoolParams
{
    unsigned intAlu = 4;
    unsigned intMulDiv = 1;
    unsigned fpAlu = 4;
    unsigned fpMulDiv = 1;
    unsigned ldst = 2;

    unsigned count(isa::FuType type) const;
    unsigned total() const
    {
        return intAlu + intMulDiv + fpAlu + fpMulDiv + ldst;
    }

    bool operator==(const FuPoolParams &) const = default;
};

/** Full pipeline configuration. */
struct OooParams
{
    unsigned fetchWidth = 8;
    unsigned decodeWidth = 8;
    unsigned renameWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;

    unsigned robEntries = 192;      ///< Table 4: 192-entry ROB
    unsigned numPhysRegs = 256;     ///< Table 4: 256-entry physical RF
    unsigned iqEntries = 64;        ///< unified issue queue
    unsigned lqEntries = 128;       ///< Table 4: 128-entry load queue
    unsigned sqEntries = 128;       ///< Table 4: 128-entry store queue

    /**
     * Cycles from branch resolution to the first fetch of the correct
     * path. Deep 8-wide front ends pay 10-20 cycles end to end; 10 here
     * plus the modelled fetch/decode refill lands in that range.
     */
    unsigned branchMispredictPenalty = 10;
    /**
     * Extra host-pipeline cycles on the load path between select and
     * data return: IQ grant, register read and AGU hand-off through the
     * centralized structures the paper's Section 2 contrasts with the
     * fabric's direct wiring (fabric LDST units do not pay this).
     */
    unsigned loadIssueToExecuteExtra = 2;
    /** Extra cycles after a memory-order-violation squash. */
    unsigned squashPenalty = 3;
    /** Latency of a store-to-load forward. */
    unsigned forwardLatency = 1;
    /** Bytes per instruction for I-cache addressing. */
    unsigned instBytes = 4;

    FuPoolParams fuPool;
    BPredParams bpred;
    StoreSetParams storeSets;

    /** When false, loads wait for all older stores (no speculation). */
    bool memorySpeculation = true;
};

} // namespace dynaspam::ooo

#endif // DYNASPAM_OOO_PARAMS_HH
