/**
 * @file
 * Prometheus-text-format metrics registry for the serve daemon.
 *
 * Implements the three metric kinds `GET /metrics` exposes — counters
 * (optionally labeled), gauges, and fixed-bucket histograms — and
 * renders them in the Prometheus text exposition format (version
 * 0.0.4): `# HELP` / `# TYPE` preambles, `name{labels} value` samples,
 * and the `_bucket`/`_sum`/`_count` triple with cumulative `le` buckets
 * for histograms.
 *
 * The registry is a single mutex-guarded map — scrape traffic and
 * request accounting are orders of magnitude cheaper than a simulation
 * job, so there is nothing to shard. Rendering is deterministic
 * (families and label sets are emitted in sorted order), which lets
 * tests string-match scrapes.
 *
 * Label strings are passed pre-formatted (`endpoint="/run",status="200"`)
 * by trusted call sites; the registry does not escape them.
 */

#ifndef DYNASPAM_SERVE_METRICS_HH
#define DYNASPAM_SERVE_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.hh"
#include "common/mutex.hh"

namespace dynaspam::serve
{

/** Mutex-guarded metric store with Prometheus text rendering. */
class Metrics
{
  public:
    /** Declare a counter family (emitted even while zero). */
    void declareCounter(const std::string &name, const std::string &help);
    /** Declare a gauge. */
    void declareGauge(const std::string &name, const std::string &help);
    /**
     * Declare a histogram with the given upper bucket bounds
     * (ascending; an implicit +Inf bucket is appended).
     */
    void declareHistogram(const std::string &name, const std::string &help,
                          std::vector<double> bounds);

    /** Add @p delta to the (unlabeled) counter @p name. */
    void inc(const std::string &name, double delta = 1);
    /** Add @p delta to the counter child with pre-formatted @p labels. */
    void inc(const std::string &name, const std::string &labels,
             double delta = 1);
    /** Set gauge @p name to @p value. */
    void set(const std::string &name, double value);
    /** Set the gauge child with pre-formatted @p labels to @p value. */
    void set(const std::string &name, const std::string &labels,
             double value);
    /** Record one observation in histogram @p name. */
    void observe(const std::string &name, double value);

    /** @return current value of a counter/gauge child (0 if absent);
     *  for tests and derived-metric computation. */
    double value(const std::string &name,
                 const std::string &labels = "") const;

    /** Render the full registry in Prometheus text format. */
    std::string render() const;

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct HistogramData
    {
        std::vector<double> bounds;          ///< ascending upper bounds
        std::vector<std::uint64_t> counts;   ///< per-bound (non-cumulative)
        std::uint64_t infCount = 0;
        std::uint64_t total = 0;
        double sum = 0.0;
    };

    struct Family
    {
        Kind kind = Kind::Counter;
        std::string help;
        /** label string -> value (counters/gauges; "" = unlabeled). */
        std::map<std::string, double> children;
        HistogramData histogram;             ///< used when kind==Histogram
    };

    Family &family(const std::string &name, Kind kind) REQUIRES(mutex);

    mutable common::Mutex mutex;
    std::map<std::string, Family> families GUARDED_BY(mutex);
};

} // namespace dynaspam::serve

#endif // DYNASPAM_SERVE_METRICS_HH
