#include "serve/metrics.hh"

#include <sstream>

#include "common/logging.hh"

namespace dynaspam::serve
{

namespace
{

/** Prometheus sample values: integral values print without a fraction. */
void
writeValue(std::ostream &os, double v)
{
    if (v == static_cast<double>(static_cast<std::int64_t>(v)))
        os << static_cast<std::int64_t>(v);
    else
        os << v;
}

} // namespace

Metrics::Family &
Metrics::family(const std::string &name, Kind kind)
{
    auto it = families.find(name);
    if (it == families.end())
        it = families.emplace(name, Family{kind, "", {}, {}}).first;
    if (it->second.kind != kind)
        panic("metric \"", name, "\" redeclared with a different kind");
    return it->second;
}

void
Metrics::declareCounter(const std::string &name, const std::string &help)
{
    common::MutexLock lock(mutex);
    family(name, Kind::Counter).help = help;
}

void
Metrics::declareGauge(const std::string &name, const std::string &help)
{
    common::MutexLock lock(mutex);
    Family &f = family(name, Kind::Gauge);
    f.help = help;
    f.children.emplace("", 0.0);
}

void
Metrics::declareHistogram(const std::string &name, const std::string &help,
                          std::vector<double> bounds)
{
    common::MutexLock lock(mutex);
    Family &f = family(name, Kind::Histogram);
    f.help = help;
    f.histogram.bounds = std::move(bounds);
    f.histogram.counts.assign(f.histogram.bounds.size(), 0);
}

void
Metrics::inc(const std::string &name, double delta)
{
    inc(name, "", delta);
}

void
Metrics::inc(const std::string &name, const std::string &labels,
             double delta)
{
    common::MutexLock lock(mutex);
    family(name, Kind::Counter).children[labels] += delta;
}

void
Metrics::set(const std::string &name, double value)
{
    common::MutexLock lock(mutex);
    family(name, Kind::Gauge).children[""] = value;
}

void
Metrics::set(const std::string &name, const std::string &labels,
             double value)
{
    common::MutexLock lock(mutex);
    family(name, Kind::Gauge).children[labels] = value;
}

void
Metrics::observe(const std::string &name, double value)
{
    common::MutexLock lock(mutex);
    HistogramData &h = family(name, Kind::Histogram).histogram;
    bool bucketed = false;
    for (std::size_t i = 0; i < h.bounds.size(); i++) {
        if (value <= h.bounds[i]) {
            h.counts[i]++;
            bucketed = true;
            break;
        }
    }
    if (!bucketed)
        h.infCount++;
    h.total++;
    h.sum += value;
}

double
Metrics::value(const std::string &name, const std::string &labels) const
{
    common::MutexLock lock(mutex);
    auto it = families.find(name);
    if (it == families.end())
        return 0.0;
    auto child = it->second.children.find(labels);
    return child == it->second.children.end() ? 0.0 : child->second;
}

std::string
Metrics::render() const
{
    common::MutexLock lock(mutex);
    std::ostringstream os;
    for (const auto &kv : families) {
        const std::string &name = kv.first;
        const Family &f = kv.second;
        if (!f.help.empty())
            os << "# HELP " << name << ' ' << f.help << '\n';
        os << "# TYPE " << name << ' '
           << (f.kind == Kind::Counter
                   ? "counter"
                   : f.kind == Kind::Gauge ? "gauge" : "histogram")
           << '\n';

        if (f.kind == Kind::Histogram) {
            const HistogramData &h = f.histogram;
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < h.bounds.size(); i++) {
                cumulative += h.counts[i];
                os << name << "_bucket{le=\"";
                writeValue(os, h.bounds[i]);
                os << "\"} " << cumulative << '\n';
            }
            os << name << "_bucket{le=\"+Inf\"} " << h.total << '\n';
            os << name << "_sum ";
            writeValue(os, h.sum);
            os << '\n' << name << "_count " << h.total << '\n';
            continue;
        }

        if (f.children.empty()) {
            // A declared-but-never-incremented counter still scrapes as
            // an explicit zero, so dashboards see the series exists.
            os << name << " 0\n";
            continue;
        }
        for (const auto &child : f.children) {
            os << name;
            if (!child.first.empty())
                os << '{' << child.first << '}';
            os << ' ';
            writeValue(os, child.second);
            os << '\n';
        }
    }
    return os.str();
}

} // namespace dynaspam::serve
