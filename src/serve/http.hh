/**
 * @file
 * Minimal HTTP/1.1 message layer over POSIX sockets.
 *
 * Implements exactly the subset the simulation service needs: parsing
 * one request (request line, headers, Content-Length body) out of a
 * byte buffer with a hard size cap, reading one from a connected
 * socket, and writing one response with Content-Length. Responses may
 * alternatively stream with `Transfer-Encoding: chunked` (the /explore
 * NDJSON stream); requests may not. No TLS.
 *
 * Two front ends share the parser:
 *  - the thread-per-connection daemon (serve::Server) reads blocking
 *    sockets via readHttpRequest, optionally keeping the connection
 *    alive across requests (readHttpRequestBuffered carries pipelined
 *    leftover bytes between calls);
 *  - the epoll coordinator (cluster::Coordinator) accumulates bytes
 *    non-blockingly and calls parseHttpRequest on its own buffers.
 *
 * Keep-alive: a response advertises `Connection: keep-alive` or
 * `Connection: close` depending on the flag the caller passes;
 * serve::Server grants keep-alive only when the client asked for it
 * explicitly, the epoll front end defaults to HTTP/1.1 persistent
 * connections.
 *
 * Header names are lower-cased on parse so lookups are
 * case-insensitive per RFC 9110. Bodies require an explicit
 * Content-Length; requests exceeding the configured cap are rejected
 * before the body is buffered, so a hostile client cannot balloon
 * memory.
 *
 * All socket writes go through sendAll, which survives partial writes,
 * EINTR, and EAGAIN/EWOULDBLOCK (non-blocking sockets or SO_SNDTIMEO
 * expiry) by polling for writability — a large sweep report is either
 * delivered completely or reported as a failure, never silently
 * truncated.
 */

#ifndef DYNASPAM_SERVE_HTTP_HH
#define DYNASPAM_SERVE_HTTP_HH

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/fd.hh"

namespace dynaspam::serve
{

/** One parsed HTTP request. */
struct HttpRequest
{
    std::string method;   ///< "GET", "POST", ... (as sent)
    std::string target;   ///< request target, e.g. "/run"
    std::string version;  ///< "HTTP/1.1"
    /** Headers with lower-cased names and trimmed values. */
    std::map<std::string, std::string> headers;
    std::string body;

    /** @return header value or empty string when absent (name must be
     *  given lower-case). */
    const std::string &header(const std::string &name) const;

    /** @return true when the client explicitly asked for keep-alive
     *  (`Connection: keep-alive`, case-insensitive). */
    bool wantsKeepAlive() const;
};

/** Outcome of one incremental parse attempt over a byte buffer. */
enum class HttpParseOutcome
{
    NeedMore,  ///< no complete request in the buffer yet
    Ok,        ///< one request parsed; @p consumed bytes were used
    Malformed, ///< syntactically invalid request -> 400
    TooLarge,  ///< exceeds the size cap -> 413
};

/**
 * Try to parse one complete request from the front of @p buf.
 * Does not modify @p buf; on Ok, @p consumed is the number of bytes the
 * request occupied (the caller erases them, keeping any pipelined
 * leftover for the next call).
 * @param max_bytes hard cap on total request size (line+headers+body)
 */
HttpParseOutcome parseHttpRequest(const std::string &buf,
                                  std::size_t max_bytes, HttpRequest &out,
                                  std::size_t &consumed);

/** Why readHttpRequest stopped. */
enum class HttpReadOutcome
{
    Ok,        ///< request fully parsed
    Closed,    ///< peer closed before sending anything (not an error)
    Malformed, ///< syntactically invalid request -> 400
    TooLarge,  ///< exceeds the size cap -> 413
    Timeout,   ///< socket read timed out mid-request -> 408
};

/**
 * Read and parse one request from @p fd. Respects the socket's
 * SO_RCVTIMEO (a slow or stalled client surfaces as Timeout).
 * @param max_bytes hard cap on total request size (line+headers+body)
 */
HttpReadOutcome readHttpRequest(int fd, std::size_t max_bytes,
                                HttpRequest &out);

/**
 * Keep-alive variant: like readHttpRequest, but pipelined bytes after
 * the parsed request stay in @p carry and seed the next call on the
 * same connection. Timeout with an empty @p carry means the connection
 * idled between requests (close silently); with buffered bytes it means
 * a stalled mid-request client (408).
 */
HttpReadOutcome readHttpRequestBuffered(int fd, std::size_t max_bytes,
                                        HttpRequest &out,
                                        std::string &carry);

/** One response to serialize. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    /** Extra headers, e.g. {"Retry-After", "2"}. */
    std::vector<std::pair<std::string, std::string>> extraHeaders;
};

/**
 * Serialize @p resp into wire bytes (status line, Content-Length,
 * `Connection: keep-alive` or `close` per @p keep_alive, headers,
 * body).
 */
std::string serializeHttpResponse(const HttpResponse &resp,
                                  bool keep_alive = false);

/**
 * Serialize and send @p resp on @p fd. @return false if the peer
 * vanished or stalled past the send-stall budget mid-write; the caller
 * just closes the socket either way.
 */
bool writeHttpResponse(int fd, const HttpResponse &resp,
                       bool keep_alive = false);

/**
 * Serialize the head of a chunked (streaming) response: status line,
 * Content-Type, `Transfer-Encoding: chunked`, `Connection: close` and
 * any @p extra_headers — everything up to and including the blank line.
 * The body then flows as encodeChunk() pieces terminated by
 * kLastChunk. Streaming responses never keep the connection alive: the
 * chunk terminator is the application-level end marker and closing is
 * what lets both ends agree the stream is complete.
 */
std::string chunkedResponseHead(
    int status, const std::string &content_type,
    const std::vector<std::pair<std::string, std::string>>
        &extra_headers = {});

/** Encode one non-empty chunk: hex size, CRLF, payload, CRLF. */
std::string encodeChunk(const std::string &data);

/** The terminating zero-size chunk ("0\r\n\r\n"). */
inline constexpr const char *kLastChunk = "0\r\n\r\n";

/**
 * Decode a complete chunked body (test/client helper). @p raw is
 * everything after the header block; trailers are not supported.
 * @return false on malformed framing or a missing terminator
 */
bool decodeChunkedBody(const std::string &raw, std::string &out);

/**
 * Send exactly @p len bytes, surviving partial writes, EINTR and
 * EAGAIN/EWOULDBLOCK (polls for writability with a bounded stall
 * budget per attempt). Never raises SIGPIPE. @return false when the
 * peer vanished or stayed unwritable for the whole stall budget.
 */
bool sendAll(int fd, const char *data, std::size_t len);

/**
 * Create a listening TCP socket: SO_REUSEADDR, bind to
 * @p bind_address:@p port (port 0 picks an ephemeral port), listen with
 * @p backlog. @p bound_port receives the actually bound port.
 * @return the owned listening socket
 * @throws FatalError when the socket cannot be bound
 */
common::Fd listenTcp(const std::string &bind_address, unsigned port,
                     int backlog, unsigned &bound_port);

/** Canonical reason phrase for @p status ("OK", "Not Found", ...). */
const char *httpStatusReason(int status);

} // namespace dynaspam::serve

#endif // DYNASPAM_SERVE_HTTP_HH
