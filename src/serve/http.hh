/**
 * @file
 * Minimal HTTP/1.1 message layer over POSIX sockets.
 *
 * Implements exactly the subset the simulation service needs: reading
 * one request (request line, headers, Content-Length body) from a
 * connected socket with a hard size cap, and writing one response with
 * Content-Length and Connection: close. No keep-alive, no chunked
 * transfer, no TLS — the daemon speaks one request per connection,
 * which keeps graceful drain trivial (a connection is in-flight or it
 * does not exist).
 *
 * Header names are lower-cased on parse so lookups are
 * case-insensitive per RFC 9110. Bodies require an explicit
 * Content-Length; requests exceeding the configured cap are rejected
 * before the body is buffered, so a hostile client cannot balloon
 * memory.
 */

#ifndef DYNASPAM_SERVE_HTTP_HH
#define DYNASPAM_SERVE_HTTP_HH

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dynaspam::serve
{

/** One parsed HTTP request. */
struct HttpRequest
{
    std::string method;   ///< "GET", "POST", ... (as sent)
    std::string target;   ///< request target, e.g. "/run"
    std::string version;  ///< "HTTP/1.1"
    /** Headers with lower-cased names and trimmed values. */
    std::map<std::string, std::string> headers;
    std::string body;

    /** @return header value or empty string when absent (name must be
     *  given lower-case). */
    const std::string &header(const std::string &name) const;
};

/** Why readHttpRequest stopped. */
enum class HttpReadOutcome
{
    Ok,        ///< request fully parsed
    Closed,    ///< peer closed before sending anything (not an error)
    Malformed, ///< syntactically invalid request -> 400
    TooLarge,  ///< exceeds the size cap -> 413
    Timeout,   ///< socket read timed out mid-request -> 408
};

/**
 * Read and parse one request from @p fd. Respects the socket's
 * SO_RCVTIMEO (a slow or stalled client surfaces as Timeout).
 * @param max_bytes hard cap on total request size (line+headers+body)
 */
HttpReadOutcome readHttpRequest(int fd, std::size_t max_bytes,
                                HttpRequest &out);

/** One response to serialize. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    /** Extra headers, e.g. {"Retry-After", "2"}. */
    std::vector<std::pair<std::string, std::string>> extraHeaders;
};

/**
 * Serialize and send @p resp on @p fd (Content-Length + Connection:
 * close are added automatically). @return false if the peer vanished
 * mid-write; the caller just closes the socket either way.
 */
bool writeHttpResponse(int fd, const HttpResponse &resp);

/** Canonical reason phrase for @p status ("OK", "Not Found", ...). */
const char *httpStatusReason(int status);

} // namespace dynaspam::serve

#endif // DYNASPAM_SERVE_HTTP_HH
