/**
 * @file
 * Simulation-as-a-service: a long-lived HTTP/JSON daemon on top of the
 * runner subsystem.
 *
 * The server turns the PR-1 runner/ResultCache into a multi-client
 * service: clients POST job specs, the server deduplicates them through
 * the same FNV-1a content hash the on-disk cache uses, simulates misses
 * on the shared runner::ThreadPool, and answers every request with the
 * exact JSON report the `dynaspam run`/`sweep` CLI would have written —
 * byte for byte, because both sides serialize through the same
 * deterministic report layer.
 *
 * Endpoints:
 *   POST /run             one job spec -> single-job report
 *   POST /sweep           {"sweep": "fig8", ...} or {"jobs": [...]}
 *   POST /explore         design-space search -> chunked NDJSON stream
 *   GET  /results/<hash>  report for a previously computed job
 *   GET  /healthz         liveness probe
 *   GET  /metrics         Prometheus text format
 *
 * Production behaviors, by design rather than garnish:
 *  - Bounded admission: at most ServerOptions::queueCapacity jobs may
 *    be queued (not yet running). Requests that would exceed it get
 *    429 + Retry-After instead of unbounded buffering.
 *  - Single-flight: concurrent requests for the same job hash share
 *    one simulation and all receive identical bytes.
 *  - Per-request wall-clock timeouts: a request whose job is still
 *    *queued* at its deadline cancels the job and gets 503; a job
 *    already running completes detached (its result still lands in
 *    the table and the cache, retrievable via GET /results/<hash>).
 *  - Request-size limits and strict JSON validation (400 with the
 *    parser's line/column on malformed bodies, 413 on oversize).
 *  - Graceful drain on SIGTERM/SIGINT via a self-pipe: stop accepting,
 *    finish in-flight requests and queued jobs, flush/GC the cache,
 *    exit 0.
 *
 * Threading model: one accept thread; one detached thread per
 * connection (HTTP parse + cache probe + wait), simulations on the
 * ThreadPool (`--jobs`). Connections are counted so drain can wait for
 * the active set to reach zero. A connection serves one request and
 * closes unless the client explicitly asks for `Connection:
 * keep-alive`, in which case requests are served back to back on the
 * same socket until the client closes, idles past the socket timeout,
 * or the server begins draining (which stops granting keep-alive).
 */

#ifndef DYNASPAM_SERVE_SERVER_HH
#define DYNASPAM_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "common/fd.hh"
#include "common/json.hh"
#include "common/mutex.hh"

#include "runner/job.hh"
#include "runner/report.hh"
#include "runner/result_cache.hh"
#include "runner/runner.hh"
#include "runner/snapshot_cache.hh"
#include "runner/thread_pool.hh"
#include "serve/http.hh"
#include "serve/metrics.hh"

namespace dynaspam::serve
{

/**
 * Parse + strictly validate one job-spec JSON object
 * ({"workload": ..., "mode": ..., "trace_length": ..., ...}).
 * Shared by the single-process daemon and the cluster coordinator so
 * both reject exactly the same inputs.
 * @throws FatalError with a descriptive message -> 400
 */
runner::Job jobFromSpecJson(const json::Value &value);

/** Parsed form of a POST /sweep request body. */
struct SweepRequest
{
    std::string name;               ///< sweep name ("custom" for jobs[])
    std::vector<runner::Job> jobs;
};

/**
 * Parse + validate a POST /sweep body: either a named sweep
 * ({"sweep": "fig8", "workloads": [...], "scale": N, ...}) or an
 * explicit {"jobs": [...]} list.
 * @throws FatalError with a descriptive message -> 400
 */
SweepRequest parseSweepBody(const std::string &body);

/** Configuration for one Server instance. */
struct ServerOptions
{
    std::string bindAddress = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (query with port()). */
    unsigned port = 8080;
    /** Simulation worker threads; 0 = ThreadPool::defaultWorkers(). */
    unsigned jobs = 0;
    /** Max jobs queued (admitted, not yet running) before 429. */
    std::size_t queueCapacity = 64;
    /** Per-request wall-clock budget before a 503. */
    std::uint64_t requestTimeoutMs = 120000;
    /** Hard cap on request size (line + headers + body). */
    std::size_t maxRequestBytes = 1 << 20;
    /** listen(2) backlog for the accept socket. */
    int acceptBacklog = 128;
    /** Result-cache directory; empty disables the disk cache. */
    std::string cacheDir;
    /** LRU size budget for the cache directory; 0 = unbounded. */
    std::uint64_t cacheMaxBytes = 0;
    /** Snapshot-cache directory: warmup jobs persist/reuse their warmed
     *  prefix across requests and restarts. Empty disables. */
    std::string snapshotCacheDir;
    /** LRU size budget for the snapshot cache; 0 = unbounded. */
    std::uint64_t snapshotCacheMaxBytes = 0;
    /**
     * Default warmup_insts applied to any incoming job spec that did
     * not set one (`dynaspam serve --warmup-insts N`). 0 = no default.
     */
    std::uint64_t defaultWarmupInsts = 0;
    /** Log a line per lifecycle event (suppressed in tests). */
    bool verbose = true;
    /**
     * Simulation function; defaults to runner::execute. A test seam:
     * injecting a gated fake makes queue-full and drain behavior
     * deterministic without multi-second simulations.
     */
    std::function<sim::RunResult(const runner::Job &)> executeFn;
};

/** The HTTP simulation service. */
class Server
{
  public:
    explicit Server(ServerOptions options);

    /** Drains (beginDrain + waitUntilDrained) if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen and spawn the accept thread.
     * @throws FatalError when the socket cannot be bound
     */
    void start();

    /** @return the actually bound port (resolves port 0). */
    unsigned port() const { return boundPort; }

    /**
     * Stop accepting new connections. Idempotent, callable from any
     * thread (it only writes the wake pipe, which is also what the
     * SIGTERM/SIGINT handler does).
     */
    void beginDrain();

    /**
     * Block until drain completes: accept thread joined, every active
     * connection finished, all admitted jobs executed, cache GC'd.
     */
    void waitUntilDrained();

    /**
     * start(), install SIGTERM/SIGINT drain handlers, and block until
     * a signal (or beginDrain) completes the drain. @return 0 — the
     * process exit code for a graceful shutdown.
     */
    int serveForever();

    Metrics &metrics() { return metrics_; }

    /** Handle one already-accepted connection; exposed for tests. */
    void handleConnection(int fd);

  private:
    /**
     * Tracking record for one admitted job. Every member is guarded by
     * tableMutex; waiters sleep on cv (also tied to tableMutex). The
     * members cannot carry GUARDED_BY(tableMutex) themselves — a nested
     * struct's attribute cannot name the enclosing Server's member —
     * so the guard is enforced by convention: JobEntry is only ever
     * touched from Server methods that hold (and are annotated as
     * holding) tableMutex.
     */
    struct JobEntry
    {
        enum class State { Queued, Running, Done, Cancelled };
        State state = State::Queued;
        runner::Job job;
        sim::RunResult result;      ///< valid when Done && !failed
        bool failed = false;
        std::string error;
        std::size_t waiters = 0;
        common::CondVar cv;
    };

    /** Outcome of resolving a batch of jobs (cache/table/queue). */
    struct Acquired
    {
        int status = 200;           ///< 200, 429, 500 or 503
        std::string error;
        std::vector<runner::JobOutcome> outcomes;
    };

    void acceptLoop();
    HttpResponse route(const HttpRequest &req, std::string &endpoint);
    /**
     * POST /explore: validate the space, then stream NDJSON engine
     * lines as a chunked response while batches run through
     * acquireJobs. Writes its own response bytes (the connection always
     * closes afterwards). @return the status for the request counter
     * (the pre-stream status, or 200 once the head has been sent —
     * later failures surface as a terminal "error" line in the stream)
     */
    int handleExploreStream(int fd, const HttpRequest &req);
    HttpResponse handleRun(const HttpRequest &req);
    HttpResponse handleSweep(const HttpRequest &req);
    HttpResponse handleResults(const std::string &target);
    HttpResponse handleHealthz();
    HttpResponse handleMetrics();

    Acquired acquireJobs(const std::vector<runner::Job> &jobs,
                         std::chrono::steady_clock::time_point deadline)
        EXCLUDES(tableMutex);
    void submitEntry(const std::shared_ptr<JobEntry> &entry)
        REQUIRES(tableMutex);
    void retainDone(const std::string &hash) REQUIRES(tableMutex);
    void updateQueueGauges() REQUIRES(tableMutex);
    void maybeGcCache();

    /** Single-job report bytes, byte-identical to the CLI's. */
    std::string runReport(const runner::JobOutcome &outcome) const;
    std::string sweepReport(const std::string &name,
                            const std::vector<runner::JobOutcome> &out)
        const;

    static HttpResponse errorResponse(int status,
                                      const std::string &message);

    ServerOptions options;
    runner::ResultCache cache;
    runner::SnapshotCache snapCache;
    runner::ForkGroupStats groupStats;
    std::unique_ptr<runner::ThreadPool> pool;
    Metrics metrics_;

    // Lifecycle state, written only by the controlling thread (the one
    // calling start()/waitUntilDrained()); beginDrain is callable from
    // anywhere because it touches only `draining` and the wake pipe.
    common::Fd listenFd;
    common::Pipe wakePipe;
    unsigned boundPort = 0;
    std::thread acceptThread;
    bool started = false;
    bool drained = false;
    /** Set at drain start: responses stop granting keep-alive. */
    std::atomic<bool> draining{false};

    // Connection accounting for drain.
    common::Mutex connMutex;
    common::CondVar connIdle;
    std::size_t activeConnections GUARDED_BY(connMutex) = 0;

    // Single-flight job table. Done entries are retained (bounded FIFO)
    // as an in-memory result store for GET /results and dedup.
    common::Mutex tableMutex;
    std::map<std::string, std::shared_ptr<JobEntry>> entries
        GUARDED_BY(tableMutex);
    std::deque<std::string> doneOrder GUARDED_BY(tableMutex);
    std::size_t queuedCount GUARDED_BY(tableMutex) = 0;
    std::size_t runningCount GUARDED_BY(tableMutex) = 0;

    std::atomic<std::uint64_t> storesSinceGc{0};
};

} // namespace dynaspam::serve

#endif // DYNASPAM_SERVE_SERVER_HH
