#include "serve/server.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/stats.hh"
#include "explore/engine.hh"
#include "workloads/workload.hh"

namespace dynaspam::serve
{

namespace
{

/** Done entries retained in the job table for GET /results. */
constexpr std::size_t kDoneRetain = 1024;

/** SO_RCVTIMEO on accepted connections: a stalled client gets 408. */
constexpr unsigned kSocketTimeoutSec = 5;

/** Cache GC every this many stores when a size budget is configured. */
constexpr std::uint64_t kGcStoreInterval = 32;

/**
 * Self-pipe write end for the SIGTERM/SIGINT drain handler. A plain
 * write(2) is async-signal-safe; everything else happens on ordinary
 * threads once the accept loop wakes.
 */
std::atomic<int> gDrainWakeFd{-1};

extern "C" void
drainSignalHandler(int)
{
    int fd = gDrainWakeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
    }
}

/** Map a request target to its metrics label ("/results/ab12" folds). */
std::string
endpointLabel(const std::string &target)
{
    if (target == "/run" || target == "/sweep" ||
        target == "/explore" || target == "/healthz" ||
        target == "/metrics")
        return target;
    if (target.rfind("/results/", 0) == 0 || target == "/results")
        return "/results";
    return "other";
}

/** Pre-formatted Prometheus label set for the request counter. */
std::string
requestLabels(const std::string &endpoint, int status)
{
    std::ostringstream os;
    os << "endpoint=\"" << endpoint << "\",status=\"" << status << "\"";
    return os.str();
}

bool
isHexHash(const std::string &s)
{
    if (s.size() != 16)
        return false;
    return std::all_of(s.begin(), s.end(), [](char c) {
        return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    });
}

/** @return v.at(key).asUint(), range-checked into [1, max]. */
unsigned
specUint(const json::Value &v, const std::string &key, unsigned fallback,
         unsigned max)
{
    const json::Value *field = v.find(key);
    if (!field)
        return fallback;
    std::uint64_t raw = field->asUint();
    if (raw < 1 || raw > max)
        fatal("job spec field \"", key, "\" out of range [1, ", max,
              "]: ", raw);
    return unsigned(raw);
}

/** Upper bound for warmup_insts in specs and query strings. */
constexpr std::uint64_t kMaxWarmupInsts = 1000000000;

/** Parse a decimal warmup_insts token (0 = no warmup is allowed). */
std::uint64_t
parseWarmupToken(const std::string &token)
{
    if (token.empty() ||
        token.find_first_not_of("0123456789") != std::string::npos)
        fatal("warmup_insts is not a decimal number: \"", token, "\"");
    std::uint64_t raw = std::strtoull(token.c_str(), nullptr, 10);
    if (raw > kMaxWarmupInsts)
        fatal("warmup_insts out of range [0, ", kMaxWarmupInsts,
              "]: ", raw);
    return raw;
}

/**
 * Apply /run query parameters ("?fidelity=sampled&warmup_insts=N") on
 * top of the body spec. The query wins over the body so a client can
 * select the fidelity tier per request without rewriting its specs.
 */
void
applyRunQuery(runner::Job &job, const std::string &target)
{
    const std::size_t qpos = target.find('?');
    if (qpos == std::string::npos)
        return;
    std::istringstream is(target.substr(qpos + 1));
    std::string part;
    while (std::getline(is, part, '&')) {
        if (part.empty())
            continue;
        const std::size_t eq = part.find('=');
        const std::string key = part.substr(0, eq);
        const std::string val =
            eq == std::string::npos ? "" : part.substr(eq + 1);
        if (key == "fidelity")
            job.fidelity = runner::parseFidelity(val);
        else if (key == "warmup_insts")
            job.warmupInsts = parseWarmupToken(val);
        else
            fatal("unknown /run query parameter \"", key, "\"");
    }
}

} // namespace

runner::Job
jobFromSpecJson(const json::Value &value)
{
    if (!value.isObject())
        fatal("job spec must be a JSON object");
    static const char *known[] = {"workload", "mode", "trace_length",
                                  "num_fabrics", "scale", "warmup_insts",
                                  "fidelity"};
    for (const auto &kv : value.asObject()) {
        bool ok = std::any_of(std::begin(known), std::end(known),
                              [&](const char *k) { return kv.first == k; });
        if (!ok)
            fatal("unknown job spec field \"", kv.first, "\"");
    }

    runner::Job job;
    const json::Value *workload = value.find("workload");
    if (!workload)
        fatal("job spec is missing \"workload\"");
    job.workload = workloads::canonicalWorkloadName(workload->asString());
    const auto &names = workloads::allWorkloadNames();
    if (std::find(names.begin(), names.end(), job.workload) == names.end())
        fatal("unknown workload \"", workload->asString(), "\"");

    if (const json::Value *mode = value.find("mode"))
        job.mode = runner::parseMode(mode->asString());
    else
        job.mode = sim::SystemMode::AccelSpec;
    job.traceLength = specUint(value, "trace_length", 32, 4096);
    job.numFabrics = specUint(value, "num_fabrics", 1, 64);
    job.scale = specUint(value, "scale", 1, 64);
    // warmup_insts legitimately takes 0 (no warmup), so it skips the
    // [1, max] helper.
    if (const json::Value *warmup = value.find("warmup_insts")) {
        std::uint64_t raw = warmup->asUint();
        if (raw > kMaxWarmupInsts)
            fatal("job spec field \"warmup_insts\" out of range [0, ",
                  kMaxWarmupInsts, "]: ", raw);
        job.warmupInsts = raw;
    }
    if (const json::Value *fidelity = value.find("fidelity"))
        job.fidelity = runner::parseFidelity(fidelity->asString());
    return job;
}

SweepRequest
parseSweepBody(const std::string &body)
{
    SweepRequest req;
    json::Value parsed = json::Value::parse(body);
    if (!parsed.isObject())
        fatal("sweep request must be a JSON object");

    if (const json::Value *list = parsed.find("jobs")) {
        for (const auto &kv : parsed.asObject())
            if (kv.first != "jobs")
                fatal("unknown sweep request field \"", kv.first,
                      "\" (explicit \"jobs\" lists take no other fields)");
        req.name = "custom";
        for (const json::Value &spec : list->asArray())
            req.jobs.push_back(jobFromSpecJson(spec));
        if (req.jobs.empty())
            fatal("\"jobs\" list is empty");
        return req;
    }

    static const char *known[] = {"sweep", "workloads", "scale",
                                  "trace_length"};
    for (const auto &kv : parsed.asObject()) {
        bool ok = std::any_of(std::begin(known), std::end(known),
                              [&](const char *k) { return kv.first == k; });
        if (!ok)
            fatal("unknown sweep request field \"", kv.first, "\"");
    }
    const json::Value *sweep = parsed.find("sweep");
    if (!sweep)
        fatal("sweep request needs \"sweep\" or \"jobs\"");
    req.name = sweep->asString();

    std::vector<std::string> workloadNames;
    if (const json::Value *wl = parsed.find("workloads")) {
        for (const json::Value &w : wl->asArray()) {
            std::string canon =
                workloads::canonicalWorkloadName(w.asString());
            const auto &names = workloads::allWorkloadNames();
            if (std::find(names.begin(), names.end(), canon) ==
                names.end())
                fatal("unknown workload \"", w.asString(), "\"");
            workloadNames.push_back(canon);
        }
        if (workloadNames.empty())
            fatal("\"workloads\" list is empty");
    } else {
        workloadNames = workloads::allWorkloadNames();
    }
    unsigned scale = specUint(parsed, "scale", 1, 64);
    unsigned traceLength = specUint(parsed, "trace_length", 32, 4096);
    req.jobs = runner::sweepJobs(req.name, workloadNames, scale,
                                 traceLength);
    return req;
}

Server::Server(ServerOptions options_)
    : options(std::move(options_)),
      cache(options.cacheDir),
      snapCache(options.snapshotCacheDir),
      pool(std::make_unique<runner::ThreadPool>(
          options.jobs ? options.jobs
                       : runner::ThreadPool::defaultWorkers()))
{
    if (!options.executeFn)
        options.executeFn = [this](const runner::Job &job) {
            // With a snapshot cache, a warmup job runs as a
            // single-member fork group: its warmed prefix is loaded
            // from / persisted to disk, so repeat requests (and daemon
            // restarts) skip the warm pass. The result cache is probed
            // and populated by the server's own job table, so the
            // group runs with the result cache disabled.
            if (snapCache.enabled() && job.warmupInsts > 0) {
                std::vector<runner::Job> jobs{job};
                std::vector<runner::JobOutcome> outcomes(1);
                runner::runForkGroup(jobs, {0}, outcomes, nullptr,
                                     &snapCache, &groupStats);
                return std::move(outcomes[0].result);
            }
            return runner::execute(job);
        };

    metrics_.declareCounter("dynaspam_http_requests_total",
                            "HTTP requests by endpoint and status code.");
    metrics_.declareCounter("dynaspam_http_connections_total",
                            "Accepted TCP connections.");
    metrics_.declareGauge("dynaspam_queue_depth",
                          "Jobs admitted but not yet running.");
    metrics_.declareGauge("dynaspam_jobs_inflight",
                          "Jobs currently simulating.");
    metrics_.declareCounter("dynaspam_jobs_executed_total",
                            "Simulations completed by this process.");
    metrics_.declareCounter("dynaspam_jobs_cancelled_total",
                            "Queued jobs cancelled by request timeout.");
    metrics_.declareCounter("dynaspam_cache_hits_total",
                            "Result-cache hits.");
    metrics_.declareCounter("dynaspam_cache_misses_total",
                            "Result-cache misses.");
    metrics_.declareGauge("dynaspam_cache_hit_ratio",
                          "Lifetime cache hits / lookups (0 when none).");
    metrics_.declareHistogram(
        "dynaspam_sim_kips",
        "Simulation speed per executed job, in kilo-instructions "
        "committed per wall-clock second.",
        {250, 500, 1000, 2000, 4000, 8000, 16000, 32000});
}

Server::~Server()
{
    if (started && !drained) {
        beginDrain();
        waitUntilDrained();
    }
}

void
Server::start()
{
    if (started)
        panic("Server::start called twice");

    wakePipe = common::Pipe::create();

    listenFd = listenTcp(options.bindAddress, options.port,
                         options.acceptBacklog, boundPort);

    started = true;
    acceptThread = std::thread([this] { acceptLoop(); });
}

void
Server::beginDrain()
{
    draining.store(true, std::memory_order_relaxed);
    if (wakePipe.writeEnd.valid()) {
        char byte = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakePipe.writeEnd.get(), &byte, 1);
    }
}

void
Server::waitUntilDrained()
{
    if (!started || drained)
        return;

    if (acceptThread.joinable())
        acceptThread.join();

    // Close the listen socket now (not in the destructor): with it open
    // the kernel would keep completing handshakes into the backlog that
    // no one will ever serve.
    listenFd.reset();

    // Every connection thread either finishes its response or times out
    // on its request deadline; either way the count reaches zero.
    {
        common::MutexLock lock(connMutex);
        while (activeConnections != 0)
            connIdle.wait(connMutex);
    }

    // Destroying the pool drains every still-queued job (results land
    // in the cache for the next process), then joins the workers.
    pool.reset();

    if (cache.enabled()) {
        runner::CacheGcStats gcStats = cache.gc(options.cacheMaxBytes);
        if (options.verbose && (gcStats.staleEvicted || gcStats.lruEvicted))
            inform("serve: final cache gc evicted ",
                   gcStats.staleEvicted + gcStats.lruEvicted, " entries");
    }
    if (snapCache.enabled()) {
        runner::CacheGcStats gcStats =
            snapCache.gc(options.snapshotCacheMaxBytes);
        if (options.verbose && (gcStats.staleEvicted || gcStats.lruEvicted))
            inform("serve: final snapshot gc evicted ",
                   gcStats.staleEvicted + gcStats.lruEvicted, " entries");
    }
    drained = true;
}

int
Server::serveForever()
{
    start();

    gDrainWakeFd.store(wakePipe.writeEnd.get(), std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = drainSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    if (options.verbose)
        inform("serve: listening on ", options.bindAddress, ":", port(),
               " (", pool->workers(), " workers, queue capacity ",
               options.queueCapacity, ")");

    waitUntilDrained();
    gDrainWakeFd.store(-1, std::memory_order_relaxed);

    if (options.verbose)
        inform("serve: drained, exiting");
    return 0;
}

void
Server::acceptLoop()
{
    while (true) {
        pollfd fds[2] = {{listenFd.get(), POLLIN, 0},
                         {wakePipe.readEnd.get(), POLLIN, 0}};
        int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll: ", std::strerror(errno));
            return;
        }
        if (fds[1].revents)
            return;    // drain requested
        if (!(fds[0].revents & POLLIN))
            continue;

        common::Fd conn(::accept(listenFd.get(), nullptr, nullptr));
        if (!conn) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn("serve: accept: ", std::strerror(errno));
            return;
        }

        timeval tv{};
        tv.tv_sec = kSocketTimeoutSec;
        ::setsockopt(conn.get(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof(tv));

        metrics_.inc("dynaspam_http_connections_total");
        {
            common::MutexLock lock(connMutex);
            activeConnections++;
        }
        try {
            // The thread owns the descriptor from here; handleConnection
            // closes it on every exit path.
            int fd = conn.get();
            std::thread([this, fd] {
                handleConnection(fd);
                common::MutexLock lock(connMutex);
                if (--activeConnections == 0)
                    connIdle.notifyAll();
            }).detach();
            conn.release();
        } catch (const std::system_error &err) {
            // Thread creation failed (EAGAIN under thread exhaustion).
            // Undo the count we took above — leaving it incremented
            // would wedge waitUntilDrained forever — and let `conn`
            // close the socket.
            warn("serve: cannot spawn connection thread: ", err.what());
            common::MutexLock lock(connMutex);
            if (--activeConnections == 0)
                connIdle.notifyAll();
        }
    }
}

void
Server::handleConnection(int fd)
{
    // Takes ownership of @p fd (int parameter so tests can hand it a
    // socketpair end): closed on every return path from here on.
    common::Fd conn(fd);
    std::string carry;
    bool first = true;
    while (true) {
        HttpRequest req;
        HttpReadOutcome outcome =
            readHttpRequestBuffered(conn.get(), options.maxRequestBytes,
                                    req, carry);

        HttpResponse resp;
        std::string endpoint = "unparsed";
        bool keepAlive = false;
        switch (outcome) {
          case HttpReadOutcome::Closed:
            return;
          case HttpReadOutcome::Malformed:
            resp = errorResponse(400, "malformed HTTP request");
            break;
          case HttpReadOutcome::TooLarge:
            resp = errorResponse(413, "request exceeds size limit");
            break;
          case HttpReadOutcome::Timeout:
            // Between requests on a kept-alive connection a read
            // timeout just means the client went idle: close silently.
            // Mid-request (bytes buffered, or the very first request)
            // it is a stalled client: 408.
            if (!first && carry.empty())
                return;
            resp = errorResponse(408, "timed out reading request");
            break;
          case HttpReadOutcome::Ok:
            if (req.target == "/explore") {
                // Streaming endpoint: writes its own response bytes
                // (chunked NDJSON on success) and never keeps the
                // connection alive — the chunk terminator plus close
                // is how the stream ends.
                endpoint = "/explore";
                int status = handleExploreStream(conn.get(), req);
                metrics_.inc("dynaspam_http_requests_total",
                             requestLabels(endpoint, status));
                return;
            }
            resp = route(req, endpoint);
            keepAlive = req.wantsKeepAlive() &&
                        !draining.load(std::memory_order_relaxed);
            break;
        }

        metrics_.inc("dynaspam_http_requests_total",
                     requestLabels(endpoint, resp.status));
        if (!writeHttpResponse(conn.get(), resp, keepAlive) || !keepAlive)
            return;
        first = false;
    }
}

HttpResponse
Server::route(const HttpRequest &req, std::string &endpoint)
{
    // /run accepts query parameters (?fidelity=..., ?warmup_insts=...);
    // every other endpoint matches on the full target as before.
    const std::string path = req.target.substr(0, req.target.find('?'));
    endpoint = endpointLabel(path == "/run" ? path : req.target);

    if (req.target == "/healthz")
        return req.method == "GET" ? handleHealthz()
                                   : errorResponse(405, "use GET");
    if (req.target == "/metrics")
        return req.method == "GET" ? handleMetrics()
                                   : errorResponse(405, "use GET");
    if (path == "/run")
        return req.method == "POST" ? handleRun(req)
                                    : errorResponse(405, "use POST");
    if (req.target == "/sweep")
        return req.method == "POST" ? handleSweep(req)
                                    : errorResponse(405, "use POST");
    if (req.target.rfind("/results/", 0) == 0)
        return req.method == "GET" ? handleResults(req.target)
                                   : errorResponse(405, "use GET");
    return errorResponse(404, "unknown endpoint");
}

HttpResponse
Server::handleHealthz()
{
    HttpResponse resp;
    resp.body = json::Value(json::Object{{"status", "ok"}}).dump(2);
    resp.body += '\n';
    return resp;
}

HttpResponse
Server::handleMetrics()
{
    // Derived gauge: refresh from the raw counters at scrape time. The
    // scrape's own request is counted after routing, so a scrape never
    // includes itself.
    double hits = metrics_.value("dynaspam_cache_hits_total");
    double misses = metrics_.value("dynaspam_cache_misses_total");
    double lookups = hits + misses;
    metrics_.set("dynaspam_cache_hit_ratio",
                 lookups > 0 ? hits / lookups : 0.0);

    HttpResponse resp;
    resp.contentType = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = metrics_.render();
    return resp;
}

HttpResponse
Server::handleRun(const HttpRequest &req)
{
    runner::Job job;
    try {
        job = jobFromSpecJson(json::Value::parse(req.body));
        applyRunQuery(job, req.target);
    } catch (const FatalError &err) {
        return errorResponse(400, err.what());
    }
    if (job.warmupInsts == 0)
        job.warmupInsts = options.defaultWarmupInsts;

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options.requestTimeoutMs);
    Acquired acq = acquireJobs({job}, deadline);
    if (acq.status != 200)
        return errorResponse(acq.status, acq.error);

    HttpResponse resp;
    resp.body = runReport(acq.outcomes.front());
    return resp;
}

HttpResponse
Server::handleSweep(const HttpRequest &req)
{
    SweepRequest sweep;
    try {
        sweep = parseSweepBody(req.body);
    } catch (const FatalError &err) {
        return errorResponse(400, err.what());
    }
    for (runner::Job &job : sweep.jobs)
        if (job.warmupInsts == 0)
            job.warmupInsts = options.defaultWarmupInsts;

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options.requestTimeoutMs);
    Acquired acq = acquireJobs(sweep.jobs, deadline);
    if (acq.status != 200)
        return errorResponse(acq.status, acq.error);

    HttpResponse resp;
    resp.body = sweepReport(sweep.name, acq.outcomes);
    return resp;
}

int
Server::handleExploreStream(int fd, const HttpRequest &req)
{
    auto fail = [&](int status, const std::string &message) {
        writeHttpResponse(fd, errorResponse(status, message));
        return status;
    };
    if (req.method != "POST")
        return fail(405, "use POST");
    explore::Space space;
    try {
        space = explore::Space::fromJson(json::Value::parse(req.body));
    } catch (const FatalError &err) {
        return fail(400, err.what());
    }
    if (draining.load(std::memory_order_relaxed))
        return fail(503, "server is draining");

    // One deadline covers the whole search, exactly like one /sweep:
    // any batch still queued at the deadline cancels and the stream
    // terminates with an error line.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options.requestTimeoutMs);

    explore::Engine engine(space);
    bool headSent = false;
    auto emit = [&](const std::string &line) {
        const std::string chunk = encodeChunk(line + "\n");
        return sendAll(fd, chunk.data(), chunk.size());
    };
    auto emitAll = [&](const std::vector<std::string> &lines) {
        for (const std::string &line : lines)
            if (!emit(line))
                return false;
        return true;
    };

    const std::vector<std::string> startLines = engine.start();
    while (!engine.done()) {
        const std::vector<runner::Job> &batch = engine.nextBatch();
        Acquired acq = acquireJobs(batch, deadline);
        if (!headSent) {
            // Admission is decided on the first batch, before any
            // stream bytes: a full queue or a draining server turns
            // into the same plain 429/503 a /sweep would get.
            if (acq.status != 200)
                return fail(acq.status, acq.error);
            const std::string head =
                chunkedResponseHead(200, "application/x-ndjson");
            if (!sendAll(fd, head.data(), head.size()) ||
                !emitAll(startLines))
                return 200;
            headSent = true;
        } else if (acq.status != 200) {
            json::Object err;
            err.emplace("type", "error");
            err.emplace("status", std::uint64_t(acq.status));
            err.emplace("error", acq.error);
            emit(json::Value(std::move(err)).dump());
            break;
        }
        if (!emitAll(engine.feed(acq.outcomes)))
            return 200;
    }
    if (!headSent) {
        // A search that needs no batches at all still streams its
        // header and final lines.
        const std::string head =
            chunkedResponseHead(200, "application/x-ndjson");
        if (!sendAll(fd, head.data(), head.size()) ||
            !emitAll(startLines))
            return 200;
    }
    sendAll(fd, kLastChunk, std::strlen(kLastChunk));
    return 200;
}

HttpResponse
Server::handleResults(const std::string &target)
{
    const std::string hash = target.substr(std::strlen("/results/"));
    if (!isHexHash(hash))
        return errorResponse(404, "not a job hash (16 lowercase hex "
                                  "characters)");

    // The in-memory table first: it has results the disk cache may not
    // (cache disabled, or the entry already LRU-evicted).
    {
        common::MutexLock lock(tableMutex);
        auto it = entries.find(hash);
        if (it != entries.end()) {
            const JobEntry &entry = *it->second;
            if (entry.state == JobEntry::State::Done && !entry.failed) {
                HttpResponse resp;
                resp.body = runReport(
                    runner::JobOutcome{entry.job, entry.result, false});
                return resp;
            }
            if (entry.state == JobEntry::State::Queued ||
                entry.state == JobEntry::State::Running) {
                HttpResponse resp;
                resp.status = 202;
                resp.body =
                    json::Value(json::Object{{"status", "pending"},
                                             {"hash", hash}})
                        .dump(2);
                resp.body += '\n';
                return resp;
            }
        }
    }

    if (auto cached = cache.loadByHash(hash)) {
        HttpResponse resp;
        resp.body = runReport(runner::JobOutcome{
            cached->first, std::move(cached->second), true});
        return resp;
    }
    return errorResponse(404, "no result for hash " + hash);
}

Server::Acquired
Server::acquireJobs(const std::vector<runner::Job> &jobs,
                    std::chrono::steady_clock::time_point deadline)
{
    Acquired acq;
    acq.outcomes.resize(jobs.size());

    // Phase 1: probe the disk cache outside the table lock. Probing
    // before the in-memory table keeps the from_cache flag (and so the
    // report bytes) identical to what the CLI would produce.
    struct Pending
    {
        std::size_t index;
        std::shared_ptr<JobEntry> entry;
    };
    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < jobs.size(); i++) {
        if (cache.enabled()) {
            if (auto cached = cache.load(jobs[i])) {
                acq.outcomes[i] =
                    runner::JobOutcome{jobs[i], std::move(*cached), true};
                metrics_.inc("dynaspam_cache_hits_total");
                continue;
            }
            metrics_.inc("dynaspam_cache_misses_total");
        }
        missing.push_back(i);
    }

    // Phase 2: one pass under the table lock — attach to in-flight or
    // retained entries, admission-check the rest as a batch, then
    // create and submit them.
    std::vector<Pending> waits;
    {
        common::MutexLock lock(tableMutex);

        std::vector<std::size_t> fresh;
        std::size_t newDistinct = 0;
        std::map<std::string, std::shared_ptr<JobEntry>> creating;
        for (std::size_t i : missing) {
            const std::string hash = jobs[i].hashHex();
            auto it = entries.find(hash);
            if (it != entries.end() &&
                it->second->state != JobEntry::State::Cancelled) {
                JobEntry &entry = *it->second;
                if (entry.state == JobEntry::State::Done) {
                    if (entry.failed) {
                        acq.status = 500;
                        acq.error = entry.error;
                    } else {
                        acq.outcomes[i] = runner::JobOutcome{
                            entry.job, entry.result, false};
                    }
                    continue;
                }
                entry.waiters++;
                waits.push_back(Pending{i, it->second});
                continue;
            }
            if (!creating.count(hash))
                newDistinct++;
            fresh.push_back(i);
            creating.emplace(hash, nullptr);
        }
        if (acq.status != 200) {
            for (Pending &p : waits)
                p.entry->waiters--;
            return acq;
        }

        if (queuedCount + newDistinct > options.queueCapacity) {
            for (Pending &p : waits)
                p.entry->waiters--;
            acq.status = 429;
            std::ostringstream os;
            os << "admission queue full (" << queuedCount << " queued, "
               << newDistinct << " requested, capacity "
               << options.queueCapacity << ")";
            acq.error = os.str();
            return acq;
        }

        for (std::size_t i : fresh) {
            const std::string hash = jobs[i].hashHex();
            std::shared_ptr<JobEntry> &slot = creating[hash];
            if (!slot) {
                slot = std::make_shared<JobEntry>();
                slot->job = jobs[i];
                entries[hash] = slot;    // replaces any Cancelled entry
                queuedCount++;
                submitEntry(slot);
            }
            slot->waiters++;
            waits.push_back(Pending{i, slot});
        }
        updateQueueGauges();
    }

    // Phase 3: wait for every attached entry, sharing one deadline.
    std::size_t waited = 0;
    for (; waited < waits.size(); waited++) {
        Pending &p = waits[waited];
        common::MutexLock lock(tableMutex);
        JobEntry &entry = *p.entry;
        bool done;
        while (true) {
            done = entry.state == JobEntry::State::Done;
            if (done)
                break;
            if (entry.cv.waitUntil(tableMutex, deadline) ==
                    std::cv_status::timeout) {
                done = entry.state == JobEntry::State::Done;
                break;
            }
        }
        entry.waiters--;
        if (done) {
            if (entry.failed) {
                acq.status = 500;
                acq.error = entry.error;
                break;
            }
            acq.outcomes[p.index] =
                runner::JobOutcome{entry.job, entry.result, false};
            continue;
        }
        // Deadline passed. A job nobody else is waiting for and that has
        // not started yet is cancelled outright; a running (or shared)
        // job keeps going — its result still lands in the table and
        // cache, retrievable later via GET /results/<hash>.
        if (entry.state == JobEntry::State::Queued && entry.waiters == 0) {
            entry.state = JobEntry::State::Cancelled;
            queuedCount--;
            entries.erase(p.entry->job.hashHex());
            metrics_.inc("dynaspam_jobs_cancelled_total");
            updateQueueGauges();
        }
        acq.status = 503;
        acq.error = "request deadline exceeded before the job finished";
        break;
    }
    if (acq.status != 200 && waited < waits.size()) {
        // Detach from the entries the aborted loop never waited on;
        // their jobs still run to completion for future requests.
        common::MutexLock lock(tableMutex);
        for (std::size_t k = waited + 1; k < waits.size(); k++)
            waits[k].entry->waiters--;
    }
    return acq;
}

void
Server::submitEntry(const std::shared_ptr<JobEntry> &entry)
{
    pool->submit([this, entry] {
        {
            common::MutexLock lock(tableMutex);
            if (entry->state != JobEntry::State::Queued)
                return;    // cancelled while waiting in the pool queue
            entry->state = JobEntry::State::Running;
            queuedCount--;
            runningCount++;
            updateQueueGauges();
        }

        sim::RunResult result;
        bool failed = false;
        std::string error;
        auto begin = std::chrono::steady_clock::now();
        try {
            result = options.executeFn(entry->job);
        } catch (const std::exception &err) {
            failed = true;
            error = err.what();
        }
        double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - begin)
                             .count();

        if (!failed) {
            if (cache.enabled()) {
                cache.store(entry->job, result);
                maybeGcCache();
            }
            if (seconds > 0)
                metrics_.observe("dynaspam_sim_kips",
                                 double(result.instsTotal) / 1000.0 /
                                     seconds);
        }

        common::MutexLock lock(tableMutex);
        entry->result = std::move(result);
        entry->failed = failed;
        entry->error = std::move(error);
        entry->state = JobEntry::State::Done;
        runningCount--;
        metrics_.inc("dynaspam_jobs_executed_total");
        retainDone(entry->job.hashHex());
        updateQueueGauges();
        entry->cv.notifyAll();
    });
}

void
Server::retainDone(const std::string &hash)
{
    doneOrder.push_back(hash);
    while (doneOrder.size() > kDoneRetain) {
        const std::string victim = doneOrder.front();
        doneOrder.pop_front();
        auto it = entries.find(victim);
        if (it != entries.end() &&
            it->second->state == JobEntry::State::Done &&
            it->second->waiters == 0)
            entries.erase(it);
    }
}

void
Server::updateQueueGauges()
{
    metrics_.set("dynaspam_queue_depth", double(queuedCount));
    metrics_.set("dynaspam_jobs_inflight", double(runningCount));
}

void
Server::maybeGcCache()
{
    if (!options.cacheMaxBytes)
        return;
    if (++storesSinceGc % kGcStoreInterval == 0)
        cache.gc(options.cacheMaxBytes);
}

std::string
Server::runReport(const runner::JobOutcome &outcome) const
{
    return sweepReport("run", {outcome});
}

std::string
Server::sweepReport(const std::string &name,
                    const std::vector<runner::JobOutcome> &outcomes) const
{
    // Rebuild the per-request registry the CLI's Runner would have
    // produced for exactly this job list, so the report bytes match the
    // CLI's for the same cache state.
    std::size_t hits = 0;
    for (const runner::JobOutcome &outcome : outcomes)
        if (outcome.fromCache)
            hits++;
    StatRegistry registry = runner::sweepRequestStats(outcomes.size(),
                                                      hits);

    std::ostringstream os;
    runner::writeSweepReport(os, name, outcomes, &registry);
    return os.str();
}

HttpResponse
Server::errorResponse(int status, const std::string &message)
{
    HttpResponse resp;
    resp.status = status;
    resp.body = json::Value(json::Object{{"error", message}}).dump(2);
    resp.body += '\n';
    if (status == 429)
        resp.extraHeaders.emplace_back("Retry-After", "2");
    return resp;
}

} // namespace dynaspam::serve
