#include "serve/http.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

namespace dynaspam::serve
{

namespace
{

const std::string kEmpty;

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return char(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** recv() with EINTR retry. @return bytes, 0 on EOF, -1 error, -2 timeout */
long
recvSome(int fd, char *buf, std::size_t len)
{
    while (true) {
        ssize_t n = ::recv(fd, buf, len, 0);
        if (n >= 0)
            return long(n);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return -2;
        return -1;
    }
}

} // namespace

const std::string &
HttpRequest::header(const std::string &name) const
{
    auto it = headers.find(name);
    return it == headers.end() ? kEmpty : it->second;
}

HttpReadOutcome
readHttpRequest(int fd, std::size_t max_bytes, HttpRequest &out)
{
    std::string buf;
    char chunk[4096];

    // Accumulate until the blank line that ends the header block.
    std::size_t header_end;
    while (true) {
        header_end = buf.find("\r\n\r\n");
        if (header_end != std::string::npos)
            break;
        if (buf.size() > max_bytes)
            return HttpReadOutcome::TooLarge;
        long n = recvSome(fd, chunk, sizeof(chunk));
        if (n == 0)
            return buf.empty() ? HttpReadOutcome::Closed
                               : HttpReadOutcome::Malformed;
        if (n == -2)
            return HttpReadOutcome::Timeout;
        if (n < 0)
            return HttpReadOutcome::Malformed;
        buf.append(chunk, std::size_t(n));
    }

    // Request line: METHOD SP TARGET SP VERSION.
    const std::string head = buf.substr(0, header_end);
    std::istringstream lines(head);
    std::string request_line;
    if (!std::getline(lines, request_line))
        return HttpReadOutcome::Malformed;
    {
        std::istringstream rl(trim(request_line));
        if (!(rl >> out.method >> out.target >> out.version))
            return HttpReadOutcome::Malformed;
        if (out.version.rfind("HTTP/", 0) != 0)
            return HttpReadOutcome::Malformed;
    }

    // Header lines: "Name: value". Later duplicates win; none of the
    // headers the server consults are list-valued.
    std::string line;
    while (std::getline(lines, line)) {
        line = trim(line);
        if (line.empty())
            continue;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0)
            return HttpReadOutcome::Malformed;
        out.headers[toLower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
    }

    // Body: exactly Content-Length bytes (0 when absent).
    std::size_t body_len = 0;
    const std::string &cl = out.header("content-length");
    if (!cl.empty()) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(cl.c_str(), &end, 10);
        if (!end || *end)
            return HttpReadOutcome::Malformed;
        body_len = std::size_t(v);
    }
    const std::size_t body_start = header_end + 4;
    if (body_start + body_len > max_bytes)
        return HttpReadOutcome::TooLarge;

    out.body = buf.substr(body_start);
    while (out.body.size() < body_len) {
        long n = recvSome(fd, chunk,
                          std::min(sizeof(chunk),
                                   body_len - out.body.size()));
        if (n == 0)
            return HttpReadOutcome::Malformed;    // truncated body
        if (n == -2)
            return HttpReadOutcome::Timeout;
        if (n < 0)
            return HttpReadOutcome::Malformed;
        out.body.append(chunk, std::size_t(n));
    }
    if (out.body.size() > body_len)
        out.body.resize(body_len);    // ignore pipelined trailing bytes
    return HttpReadOutcome::Ok;
}

bool
writeHttpResponse(int fd, const HttpResponse &resp)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << resp.status << ' '
       << httpStatusReason(resp.status) << "\r\n"
       << "Content-Type: " << resp.contentType << "\r\n"
       << "Content-Length: " << resp.body.size() << "\r\n"
       << "Connection: close\r\n";
    for (const auto &kv : resp.extraHeaders)
        os << kv.first << ": " << kv.second << "\r\n";
    os << "\r\n" << resp.body;

    const std::string wire = os.str();
    std::size_t sent = 0;
    while (sent < wire.size()) {
        // MSG_NOSIGNAL: a vanished client must not SIGPIPE the daemon.
        ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += std::size_t(n);
    }
    return true;
}

const char *
httpStatusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default: return "Unknown";
    }
}

} // namespace dynaspam::serve
