#include "serve/http.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace dynaspam::serve
{

namespace
{

const std::string kEmpty;

/**
 * How long one send may sit unwritable before sendAll gives up. A peer
 * that stops reading for this long is treated as vanished; a merely
 * slow peer (tiny SO_SNDBUF, bursty reader) drains well within it.
 */
constexpr int kSendStallTimeoutMs = 10000;

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return char(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** recv() with EINTR retry. @return bytes, 0 on EOF, -1 error, -2 timeout */
long
recvSome(int fd, char *buf, std::size_t len)
{
    while (true) {
        ssize_t n = ::recv(fd, buf, len, 0);
        if (n >= 0)
            return long(n);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return -2;
        return -1;
    }
}

} // namespace

const std::string &
HttpRequest::header(const std::string &name) const
{
    auto it = headers.find(name);
    return it == headers.end() ? kEmpty : it->second;
}

bool
HttpRequest::wantsKeepAlive() const
{
    return toLower(header("connection")) == "keep-alive";
}

HttpParseOutcome
parseHttpRequest(const std::string &buf, std::size_t max_bytes,
                 HttpRequest &out, std::size_t &consumed)
{
    out = HttpRequest{};
    consumed = 0;

    std::size_t header_end = buf.find("\r\n\r\n");
    if (header_end == std::string::npos)
        return buf.size() > max_bytes ? HttpParseOutcome::TooLarge
                                      : HttpParseOutcome::NeedMore;

    // Request line: METHOD SP TARGET SP VERSION.
    const std::string head = buf.substr(0, header_end);
    std::istringstream lines(head);
    std::string request_line;
    if (!std::getline(lines, request_line))
        return HttpParseOutcome::Malformed;
    {
        std::istringstream rl(trim(request_line));
        if (!(rl >> out.method >> out.target >> out.version))
            return HttpParseOutcome::Malformed;
        if (out.version.rfind("HTTP/", 0) != 0)
            return HttpParseOutcome::Malformed;
    }

    // Header lines: "Name: value". Later duplicates win; none of the
    // headers the server consults are list-valued.
    std::string line;
    while (std::getline(lines, line)) {
        line = trim(line);
        if (line.empty())
            continue;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0)
            return HttpParseOutcome::Malformed;
        out.headers[toLower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
    }

    // Body: exactly Content-Length bytes (0 when absent).
    std::size_t body_len = 0;
    const std::string &cl = out.header("content-length");
    if (!cl.empty()) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(cl.c_str(), &end, 10);
        if (!end || *end)
            return HttpParseOutcome::Malformed;
        body_len = std::size_t(v);
    }
    const std::size_t body_start = header_end + 4;
    if (body_start + body_len > max_bytes)
        return HttpParseOutcome::TooLarge;
    if (buf.size() < body_start + body_len)
        return HttpParseOutcome::NeedMore;

    out.body = buf.substr(body_start, body_len);
    consumed = body_start + body_len;
    return HttpParseOutcome::Ok;
}

HttpReadOutcome
readHttpRequestBuffered(int fd, std::size_t max_bytes, HttpRequest &out,
                        std::string &carry)
{
    char chunk[4096];
    bool had_bytes = !carry.empty();
    while (true) {
        std::size_t consumed = 0;
        switch (parseHttpRequest(carry, max_bytes, out, consumed)) {
          case HttpParseOutcome::Ok:
            carry.erase(0, consumed);
            return HttpReadOutcome::Ok;
          case HttpParseOutcome::Malformed:
            return HttpReadOutcome::Malformed;
          case HttpParseOutcome::TooLarge:
            return HttpReadOutcome::TooLarge;
          case HttpParseOutcome::NeedMore:
            break;
        }
        long n = recvSome(fd, chunk, sizeof(chunk));
        if (n == 0)
            return had_bytes ? HttpReadOutcome::Malformed
                             : HttpReadOutcome::Closed;
        if (n == -2)
            return HttpReadOutcome::Timeout;
        if (n < 0)
            return HttpReadOutcome::Malformed;
        carry.append(chunk, std::size_t(n));
        had_bytes = true;
    }
}

HttpReadOutcome
readHttpRequest(int fd, std::size_t max_bytes, HttpRequest &out)
{
    // One-shot form: pipelined trailing bytes are dropped, as a
    // close-per-request server never reads a second request.
    std::string carry;
    return readHttpRequestBuffered(fd, max_bytes, out, carry);
}

bool
sendAll(int fd, const char *data, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        // MSG_NOSIGNAL: a vanished client must not SIGPIPE the daemon.
        ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n >= 0) {
            sent += std::size_t(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            // Non-blocking socket (or SO_SNDTIMEO expired) with a full
            // send buffer: wait for writability, bounded so a peer that
            // stopped reading cannot pin this thread forever.
            pollfd pfd{fd, POLLOUT, 0};
            int ready = ::poll(&pfd, 1, kSendStallTimeoutMs);
            if (ready < 0 && errno == EINTR)
                continue;
            if (ready <= 0)
                return false;
            continue;
        }
        return false;
    }
    return true;
}

std::string
serializeHttpResponse(const HttpResponse &resp, bool keep_alive)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << resp.status << ' '
       << httpStatusReason(resp.status) << "\r\n"
       << "Content-Type: " << resp.contentType << "\r\n"
       << "Content-Length: " << resp.body.size() << "\r\n"
       << "Connection: " << (keep_alive ? "keep-alive" : "close")
       << "\r\n";
    for (const auto &kv : resp.extraHeaders)
        os << kv.first << ": " << kv.second << "\r\n";
    os << "\r\n" << resp.body;
    return os.str();
}

bool
writeHttpResponse(int fd, const HttpResponse &resp, bool keep_alive)
{
    const std::string wire = serializeHttpResponse(resp, keep_alive);
    return sendAll(fd, wire.data(), wire.size());
}

std::string
chunkedResponseHead(
    int status, const std::string &content_type,
    const std::vector<std::pair<std::string, std::string>> &extra_headers)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << status << ' ' << httpStatusReason(status)
       << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Transfer-Encoding: chunked\r\n"
       << "Connection: close\r\n";
    for (const auto &kv : extra_headers)
        os << kv.first << ": " << kv.second << "\r\n";
    os << "\r\n";
    return os.str();
}

std::string
encodeChunk(const std::string &data)
{
    std::ostringstream os;
    os << std::hex << data.size() << "\r\n" << data << "\r\n";
    return os.str();
}

bool
decodeChunkedBody(const std::string &raw, std::string &out)
{
    out.clear();
    std::size_t pos = 0;
    while (true) {
        std::size_t eol = raw.find("\r\n", pos);
        if (eol == std::string::npos)
            return false;
        std::size_t size = 0;
        bool any = false;
        for (std::size_t i = pos; i < eol; i++) {
            char c = raw[i];
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else if (c >= 'A' && c <= 'F')
                digit = c - 'A' + 10;
            else
                return false;
            if (size > (SIZE_MAX >> 4))
                return false;
            size = (size << 4) | std::size_t(digit);
            any = true;
        }
        if (!any)
            return false;
        pos = eol + 2;
        if (size == 0)
            return raw.compare(pos, 2, "\r\n") == 0;
        if (pos + size + 2 > raw.size())
            return false;
        out.append(raw, pos, size);
        if (raw.compare(pos + size, 2, "\r\n") != 0)
            return false;
        pos += size + 2;
    }
}

common::Fd
listenTcp(const std::string &bind_address, unsigned port, int backlog,
          unsigned &bound_port)
{
    // The Fd owns the socket from creation on, so every fatal() below
    // (which throws) closes it on the way out — no per-path ::close.
    common::Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd)
        fatal("listen: socket: ", std::strerror(errno));

    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(port));
    if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1)
        fatal("listen: bad bind address \"", bind_address, "\"");
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("listen: bind ", bind_address, ":", port, ": ",
              std::strerror(errno));
    if (::listen(fd.get(), backlog) != 0)
        fatal("listen: ", std::strerror(errno));

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        fatal("listen: getsockname: ", std::strerror(errno));
    bound_port = ntohs(bound.sin_port);
    return fd;
}

const char *
httpStatusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default: return "Unknown";
    }
}

} // namespace dynaspam::serve
