#include "runner/report.hh"

#include "common/logging.hh"
#include "isa/opcodes.hh"
#include "workloads/workload.hh"

namespace dynaspam::runner
{

namespace
{

constexpr std::size_t kNumFuTypes =
    std::size_t(isa::FuType::NUM_FU_TYPES);

json::Value
pipelineToJson(const ooo::PipelineStats &p)
{
    json::Object o;
    o.emplace("cycles", p.cycles);
    o.emplace("fetched_insts", p.fetchedInsts);
    o.emplace("renamed_insts", p.renamedInsts);
    o.emplace("dispatched_insts", p.dispatchedInsts);
    o.emplace("issued_insts", p.issuedInsts);
    o.emplace("committed_insts", p.committedInsts);
    o.emplace("committed_on_host", p.committedOnHost);
    o.emplace("squashed_insts", p.squashedInsts);
    o.emplace("branch_mispredicts", p.branchMispredicts);
    o.emplace("mem_order_violations", p.memOrderViolations);
    o.emplace("reg_reads", p.regReads);
    o.emplace("reg_writes", p.regWrites);
    o.emplace("bypasses", p.bypasses);
    o.emplace("iq_wakeups", p.iqWakeups);
    json::Array fu_ops;
    for (std::size_t i = 0; i < kNumFuTypes; i++)
        fu_ops.emplace_back(p.fuOps[i]);
    o.emplace("fu_ops", std::move(fu_ops));
    o.emplace("load_forwards", p.loadForwards);
    o.emplace("icache_accesses", p.icacheAccesses);
    o.emplace("dcache_accesses", p.dcacheAccesses);
    o.emplace("rob_writes", p.robWrites);
    o.emplace("rob_reads", p.robReads);
    o.emplace("invocations_committed", p.invocationsCommitted);
    o.emplace("invocations_squashed", p.invocationsSquashed);
    o.emplace("mapping_insts_executed", p.mappingInstsExecuted);
    return json::Value(std::move(o));
}

ooo::PipelineStats
pipelineFromJson(const json::Value &v)
{
    ooo::PipelineStats p;
    p.cycles = v.at("cycles").asUint();
    p.fetchedInsts = v.at("fetched_insts").asUint();
    p.renamedInsts = v.at("renamed_insts").asUint();
    p.dispatchedInsts = v.at("dispatched_insts").asUint();
    p.issuedInsts = v.at("issued_insts").asUint();
    p.committedInsts = v.at("committed_insts").asUint();
    p.committedOnHost = v.at("committed_on_host").asUint();
    p.squashedInsts = v.at("squashed_insts").asUint();
    p.branchMispredicts = v.at("branch_mispredicts").asUint();
    p.memOrderViolations = v.at("mem_order_violations").asUint();
    p.regReads = v.at("reg_reads").asUint();
    p.regWrites = v.at("reg_writes").asUint();
    p.bypasses = v.at("bypasses").asUint();
    p.iqWakeups = v.at("iq_wakeups").asUint();
    const json::Array &fu_ops = v.at("fu_ops").asArray();
    if (fu_ops.size() != kNumFuTypes)
        fatal("result json: fu_ops has ", fu_ops.size(), " entries, "
              "expected ", kNumFuTypes);
    for (std::size_t i = 0; i < kNumFuTypes; i++)
        p.fuOps[i] = fu_ops[i].asUint();
    p.loadForwards = v.at("load_forwards").asUint();
    p.icacheAccesses = v.at("icache_accesses").asUint();
    p.dcacheAccesses = v.at("dcache_accesses").asUint();
    p.robWrites = v.at("rob_writes").asUint();
    p.robReads = v.at("rob_reads").asUint();
    p.invocationsCommitted = v.at("invocations_committed").asUint();
    p.invocationsSquashed = v.at("invocations_squashed").asUint();
    p.mappingInstsExecuted = v.at("mapping_insts_executed").asUint();
    return p;
}

json::Value
dynaspamToJson(const core::DynaSpamStats &d)
{
    json::Object o;
    o.emplace("traces_considered", d.tracesConsidered);
    o.emplace("mappings_started", d.mappingsStarted);
    o.emplace("mappings_completed", d.mappingsCompleted);
    o.emplace("mappings_aborted", d.mappingsAborted);
    o.emplace("mappings_discarded", d.mappingsDiscarded);
    o.emplace("offloads_issued", d.offloadsIssued);
    o.emplace("invocations_committed", d.invocationsCommitted);
    o.emplace("invocations_squashed", d.invocationsSquashed);
    o.emplace("invocations_collateral", d.invocationsCollateral);
    o.emplace("hot_not_mapped", d.hotNotMapped);
    o.emplace("offload_below_threshold", d.offloadBelowThreshold);
    o.emplace("offload_suppressed", d.offloadSuppressed);
    o.emplace("insts_offloaded", d.instsOffloaded);
    o.emplace("reconfigurations", d.reconfigurations);
    o.emplace("distinct_mapped_traces", d.distinctMappedTraces);
    o.emplace("distinct_offloaded_traces", d.distinctOffloadedTraces);
    o.emplace("lifetime_sum", d.lifetimeSum);
    o.emplace("lifetime_count", d.lifetimeCount);
    return json::Value(std::move(o));
}

core::DynaSpamStats
dynaspamFromJson(const json::Value &v)
{
    core::DynaSpamStats d;
    d.tracesConsidered = v.at("traces_considered").asUint();
    d.mappingsStarted = v.at("mappings_started").asUint();
    d.mappingsCompleted = v.at("mappings_completed").asUint();
    d.mappingsAborted = v.at("mappings_aborted").asUint();
    d.mappingsDiscarded = v.at("mappings_discarded").asUint();
    d.offloadsIssued = v.at("offloads_issued").asUint();
    d.invocationsCommitted = v.at("invocations_committed").asUint();
    d.invocationsSquashed = v.at("invocations_squashed").asUint();
    d.invocationsCollateral = v.at("invocations_collateral").asUint();
    d.hotNotMapped = v.at("hot_not_mapped").asUint();
    d.offloadBelowThreshold = v.at("offload_below_threshold").asUint();
    d.offloadSuppressed = v.at("offload_suppressed").asUint();
    d.instsOffloaded = v.at("insts_offloaded").asUint();
    d.reconfigurations = v.at("reconfigurations").asUint();
    d.distinctMappedTraces = v.at("distinct_mapped_traces").asUint();
    d.distinctOffloadedTraces = v.at("distinct_offloaded_traces").asUint();
    d.lifetimeSum = v.at("lifetime_sum").asUint();
    d.lifetimeCount = v.at("lifetime_count").asUint();
    return d;
}

json::Value
energyToJson(const energy::EnergyBreakdown &e)
{
    json::Object components;
    for (const auto &kv : e.component)
        components.emplace(kv.first, kv.second);
    json::Object o;
    o.emplace("components", std::move(components));
    o.emplace("total", e.total());
    return json::Value(std::move(o));
}

energy::EnergyBreakdown
energyFromJson(const json::Value &v)
{
    energy::EnergyBreakdown e;
    for (const auto &kv : v.at("components").asObject())
        e.component.emplace(kv.first, kv.second.asDouble());
    return e;
}

StatRegistry
registryFromJson(const json::Value &v)
{
    StatRegistry reg;
    for (const auto &kv : v.at("counters").asObject())
        reg.counter(kv.first).inc(kv.second.asUint());
    for (const auto &kv : v.at("accums").asObject())
        reg.accum(kv.first).add(kv.second.asDouble());
    for (const auto &kv : v.at("histograms").asObject()) {
        const json::Value &h = kv.second;
        const json::Array &buckets = h.at("buckets").asArray();
        std::vector<std::uint64_t> counts;
        counts.reserve(buckets.size());
        for (const json::Value &b : buckets)
            counts.push_back(b.asUint());
        reg.histogram(kv.first, h.at("bucket_width").asUint(),
                      counts.size())
            .restore(counts, h.at("overflow").asUint(),
                     h.at("count").asUint(), h.at("sum").asUint());
    }
    return reg;
}

} // namespace

json::Value
resultToJson(const sim::RunResult &result)
{
    json::Object insts;
    insts.emplace("total", result.instsTotal);
    insts.emplace("mapping", result.instsMapping);
    insts.emplace("fabric", result.instsFabric);
    insts.emplace("host", result.instsHost);

    json::Object o;
    o.emplace("cycles", std::uint64_t(result.cycles));
    o.emplace("ipc", result.ipc());
    o.emplace("insts", std::move(insts));
    o.emplace("functionally_correct", result.functionallyCorrect);
    o.emplace("pipeline", pipelineToJson(result.pipeline));
    o.emplace("dynaspam", dynaspamToJson(result.dynaspam));
    o.emplace("energy", energyToJson(result.energy));
    o.emplace("stats", result.stats.toJson());
    // Emitted only for sampled-fidelity results, so the serialized form
    // of every full-fidelity result is unchanged.
    if (result.sampled) {
        json::Object s;
        s.emplace("insts", result.sampledInsts);
        s.emplace("cycles", result.sampledCycles);
        o.emplace("sampled", std::move(s));
    }
    return json::Value(std::move(o));
}

sim::RunResult
resultFromJson(const json::Value &v)
{
    sim::RunResult r;
    r.cycles = v.at("cycles").asUint();
    const json::Value &insts = v.at("insts");
    r.instsTotal = insts.at("total").asUint();
    r.instsMapping = insts.at("mapping").asUint();
    r.instsFabric = insts.at("fabric").asUint();
    r.instsHost = insts.at("host").asUint();
    r.functionallyCorrect = v.at("functionally_correct").asBool();
    r.pipeline = pipelineFromJson(v.at("pipeline"));
    r.dynaspam = dynaspamFromJson(v.at("dynaspam"));
    r.energy = energyFromJson(v.at("energy"));
    r.stats = registryFromJson(v.at("stats"));
    if (const json::Value *sampled = v.find("sampled")) {
        r.sampled = true;
        r.sampledInsts = sampled->at("insts").asUint();
        r.sampledCycles = sampled->at("cycles").asUint();
    }
    return r;
}

json::Value
jobToJson(const Job &job)
{
    json::Object o;
    o.emplace("workload", workloads::canonicalWorkloadName(job.workload));
    o.emplace("mode", std::string(sim::modeName(job.mode)));
    o.emplace("trace_length", job.traceLength);
    o.emplace("num_fabrics", job.numFabrics);
    o.emplace("scale", job.scale);
    o.emplace("warmup_insts", job.warmupInsts);
    o.emplace("fidelity", std::string(fidelityName(job.fidelity)));
    o.emplace("hash", job.hashHex());
    return json::Value(std::move(o));
}

Job
jobFromJson(const json::Value &v)
{
    Job job;
    job.workload = v.at("workload").asString();
    job.mode = parseMode(v.at("mode").asString());
    job.traceLength = unsigned(v.at("trace_length").asUint());
    job.numFabrics = unsigned(v.at("num_fabrics").asUint());
    job.scale = unsigned(v.at("scale").asUint());
    job.warmupInsts = v.at("warmup_insts").asUint();
    job.fidelity = parseFidelity(v.at("fidelity").asString());
    return job;
}

json::Value
sweepEntryJson(const JobOutcome &outcome)
{
    json::Object entry;
    entry.emplace("job", jobToJson(outcome.job));
    entry.emplace("from_cache", outcome.fromCache);
    entry.emplace("result", resultToJson(outcome.result));
    return json::Value(std::move(entry));
}

json::Value
sweepReportJson(const std::string &name, std::vector<json::Value> entries,
                const StatRegistry *runner_stats)
{
    json::Array results;
    for (json::Value &entry : entries)
        results.emplace_back(std::move(entry));

    json::Object root;
    root.emplace("schema_version", kSweepSchemaVersion);
    root.emplace("tool", "dynaspam");
    root.emplace("sweep", name);
    root.emplace("num_jobs", std::uint64_t(results.size()));
    if (runner_stats)
        root.emplace("runner", runner_stats->toJson());
    root.emplace("results", std::move(results));
    return json::Value(std::move(root));
}

StatRegistry
sweepRequestStats(std::size_t total, std::size_t hits)
{
    StatRegistry registry;
    registry.counter("runner.jobs_total").inc(total);
    registry.counter("runner.cache_hits").inc(hits);
    registry.counter("runner.cache_misses").inc(total - hits);
    registry.counter("runner.jobs_executed").inc(total - hits);
    return registry;
}

void
writeSweepReport(std::ostream &os, const std::string &name,
                 const std::vector<JobOutcome> &outcomes,
                 const StatRegistry *runner_stats)
{
    std::vector<json::Value> entries;
    entries.reserve(outcomes.size());
    for (const JobOutcome &outcome : outcomes)
        entries.push_back(sweepEntryJson(outcome));
    sweepReportJson(name, std::move(entries), runner_stats).write(os, 2);
    os << "\n";
}

} // namespace dynaspam::runner
