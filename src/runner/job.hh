/**
 * @file
 * Experiment job specification.
 *
 * A Job names one simulation point of the evaluation space: a workload,
 * a named system configuration, and the sweep parameters (trace length,
 * fabric count, problem scale). Jobs are plain values so they can be
 * queued on the thread pool, hashed for the on-disk result cache, and
 * serialized into sweep reports.
 *
 * The content hash is FNV-1a over the canonical key string, so it is
 * stable across processes, platforms and standard-library versions —
 * a requirement for the cache file naming scheme.
 */

#ifndef DYNASPAM_RUNNER_JOB_HH
#define DYNASPAM_RUNNER_JOB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "trace/trace.hh"

namespace dynaspam::sim
{
class Simulation;
} // namespace dynaspam::sim

namespace dynaspam::runner
{

/**
 * Result fidelity tier. Full simulates every oracle record in detail;
 * Sampled simulates a detailed warmup prefix plus one measurement
 * window and extrapolates total cycles from the window CPI
 * (SimPoint-style single-interval sampling). Sampled results carry the
 * RunResult::sampled marker; full-fidelity results are byte-identical
 * to what the simulator always produced.
 */
enum class Fidelity : std::uint8_t
{
    Full,
    Sampled,
};

/** @return "full" or "sampled". */
const char *fidelityName(Fidelity fidelity);

/**
 * Parse a fidelity token as printed by fidelityName.
 * @throws FatalError on an unknown token
 */
Fidelity parseFidelity(const std::string &token);

/** Detailed commits in the sampled-fidelity measurement window. */
inline constexpr std::uint64_t kSampledWindowInsts = 50000;

/** One schedulable simulation point. */
struct Job
{
    std::string workload;                ///< registry tag ("bfs", ...)
    sim::SystemMode mode = sim::SystemMode::BaselineOoo;
    unsigned traceLength = 32;
    unsigned numFabrics = 1;
    unsigned scale = 1;

    /**
     * Detailed warmup prefix in committed instructions. 0 means no
     * warmup phase: full-fidelity jobs run straight through and
     * sampled jobs start their window at cycle 0. A non-zero warmup
     * also makes the job eligible for forked-sweep execution (the
     * runner simulates the shared prefix once per group and forks each
     * configuration from the warmed snapshot).
     */
    std::uint64_t warmupInsts = 0;

    Fidelity fidelity = Fidelity::Full;

    /** Canonical key: `workload|mode|trace|fabrics|scale|warmup|fidelity`. */
    std::string key() const;

    /** Stable 64-bit FNV-1a content hash of key(). */
    std::uint64_t hash() const;

    /** hash() as a fixed-width lowercase hex string (cache file stem). */
    std::string hashHex() const;

    bool operator==(const Job &other) const = default;
};

/**
 * Parse a mode token as printed by sim::modeName ("baseline-ooo",
 * "mapping-only", "accel-nospec", "accel-spec", "accel-naive").
 * @throws FatalError on an unknown token
 */
sim::SystemMode parseMode(const std::string &token);

/**
 * Fork-group key: jobs fork together when they agree on everything the
 * warmup prefix can observe — the input (workload, scale), the
 * trace-detection geometry (traceLength), controller presence, and the
 * stop rule (warmupInsts, fidelity). Mode and numFabrics may differ
 * within a group; the WarmupGuard catches the first prefix decision
 * that would notice the difference. Shared by the in-process runner,
 * the snapshot cache, and the cluster coordinator's sharding.
 */
std::string forkGroupKey(const Job &job);

/**
 * Sharding hash for the cluster: the FNV-1a of forkGroupKey for
 * warmup-eligible jobs (so every member of a fork group maps to the
 * same worker slot and the group warms exactly once), and the plain
 * per-job hash otherwise (keeping non-warmup sharding unchanged).
 */
std::uint64_t forkGroupHash(const Job &job);

/**
 * Build the job list for one named sweep — "fig7", "fig8", "fig9",
 * "table5" or "ablation-mapper" — over @p workloads. Shared by the CLI
 * (`dynaspam sweep`) and the serve daemon (`POST /sweep`) so both
 * expand a sweep name to the exact same points.
 * @throws FatalError on an unknown sweep name
 */
std::vector<Job> sweepJobs(const std::string &sweep,
                           const std::vector<std::string> &workloads,
                           unsigned scale, unsigned trace_length);

/**
 * Execute @p job: build the workload, construct a fresh System and run
 * it. Thread-safe — every call uses only job-local state.
 *
 * When the DYNASPAM_TRACE environment variable requests tracing, the
 * run is traced into a per-job sink and the rendered trace files are
 * written under trace::envTraceDir() as `<job key>.trace.json` (Chrome
 * JSON) and `<job key>.trace.json.kanata` (Konata log), with '|' in the
 * key replaced by '_' for filesystem friendliness.
 */
sim::RunResult execute(const Job &job);

/**
 * Execute @p job with @p sink attached for the timing pass (nullptr =
 * untraced). The caller owns the sink and renders it; nothing is
 * written to disk and DYNASPAM_TRACE is not consulted.
 */
sim::RunResult execute(const Job &job, trace::TraceSink *sink);

/**
 * Drive an already-constructed (possibly snapshot-restored) simulation
 * to @p job's stop point and assemble its result. Full fidelity runs
 * to completion; sampled fidelity runs the detailed warmup + window
 * prefix and extrapolates total cycles from the window CPI. The forked
 * sweep path in Runner calls this on restored forks so both paths
 * share one stop/collect rule.
 */
sim::RunResult finishSimulation(const Job &job, sim::Simulation &simu);

/** Trace file stem for @p job: its key with '|' replaced by '_'. */
std::string traceFileStem(const Job &job);

} // namespace dynaspam::runner

#endif // DYNASPAM_RUNNER_JOB_HH
