#include "runner/snapshot_cache.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/binio.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"
#include "sim/snapshot_io.hh"

namespace dynaspam::runner
{

namespace fs = std::filesystem;

namespace
{

constexpr char kSnapshotMagic[4] = {'D', 'S', 'N', 'P'};

std::optional<std::string>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
touch(const std::string &path)
{
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

/**
 * Parse a snapshot file's frame. @return the body on success; nullopt
 * when any frame field fails validation. When @p group_key /
 * @p input_hash are provided they are matched too (gc passes nullptr
 * to validate the frame shape only).
 */
std::optional<std::string>
parseFrame(const std::string &bytes, const std::string &epoch,
           const std::string *group_key, const std::uint64_t *input_hash)
{
    binio::Reader in(bytes.data(), bytes.size());
    char magic[4];
    in.raw(magic, 4);
    if (!in.ok() || std::memcmp(magic, kSnapshotMagic, 4) != 0)
        return std::nullopt;
    if (in.u32() != sim::kSnapshotFormatVersion)
        return std::nullopt;
    if (in.str() != epoch)
        return std::nullopt;
    std::string stored_key = in.str();
    if (group_key && stored_key != *group_key)
        return std::nullopt;
    std::uint64_t stored_hash = in.u64();
    if (input_hash && stored_hash != *input_hash)
        return std::nullopt;
    std::uint64_t checksum = in.u64();
    std::string body = in.str();
    if (!in.ok() || in.remaining() != 0)
        return std::nullopt;
    if (bits::fnv1a(body.data(), body.size()) != checksum)
        return std::nullopt;
    return body;
}

} // namespace

SnapshotCache::SnapshotCache(std::string dir_, std::string epoch_)
    : dir(std::move(dir_)), epoch(std::move(epoch_))
{
}

std::string
SnapshotCache::pathFor(const std::string &group_key) const
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  (unsigned long long)bits::fnv1a(group_key.data(),
                                                  group_key.size()));
    return (fs::path(dir) / (std::string(hex) + ".snap")).string();
}

std::optional<std::string>
SnapshotCache::load(const std::string &group_key,
                    std::uint64_t input_hash, bool *rejected) const
{
    if (rejected)
        *rejected = false;
    if (!enabled())
        return std::nullopt;
    const std::string path = pathFor(group_key);
    std::optional<std::string> bytes = slurp(path);
    if (!bytes)
        return std::nullopt;
    std::optional<std::string> body =
        parseFrame(*bytes, epoch, &group_key, &input_hash);
    if (body)
        touch(path);
    else if (rejected)
        *rejected = true;
    return body;
}

void
SnapshotCache::store(const std::string &group_key,
                     std::uint64_t input_hash,
                     const std::string &body) const
{
    if (!enabled())
        return;

    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("snapshot cache: cannot create ", dir, ": ", ec.message());
        return;
    }

    binio::Writer frame;
    frame.raw(kSnapshotMagic, 4);
    frame.u32(sim::kSnapshotFormatVersion);
    frame.str(epoch);
    frame.str(group_key);
    frame.u64(input_hash);
    frame.u64(bits::fnv1a(body.data(), body.size()));
    frame.str(body);

    const std::string final_path = pathFor(group_key);
    std::ostringstream tmp_name;
    tmp_name << final_path << ".tmp." << ::getpid() << "."
             << std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string tmp_path = tmp_name.str();

    const int cleanup = interrupt::registerCleanupFile(tmp_path.c_str());
    {
        std::ofstream out(tmp_path, std::ios::binary);
        if (!out) {
            warn("snapshot cache: cannot write ", tmp_path);
            interrupt::unregisterCleanupFile(cleanup);
            return;
        }
        out.write(frame.bytes().data(),
                  std::streamsize(frame.bytes().size()));
    }
    fs::rename(tmp_path, final_path, ec);
    interrupt::unregisterCleanupFile(cleanup);
    if (ec) {
        warn("snapshot cache: rename to ", final_path, " failed: ",
             ec.message());
        fs::remove(tmp_path, ec);
    }
}

CacheGcStats
SnapshotCache::gc(std::uint64_t max_bytes) const
{
    CacheGcStats stats;
    if (!enabled())
        return stats;

    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return stats;

    struct Entry
    {
        std::string path;
        std::uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<Entry> live;

    for (const fs::directory_entry &de : it) {
        if (!de.is_regular_file(ec) || ec)
            continue;
        const std::string path = de.path().string();
        const std::string name = de.path().filename().string();
        const std::uint64_t size = de.file_size(ec);
        if (ec)
            continue;

        // Same tmp rule as ResultCache::gc: only litter older than the
        // grace window is reaped; fresh temp files belong to a live
        // writer racing this pass.
        if (name.find(".tmp.") != std::string::npos) {
            const fs::file_time_type mtime = de.last_write_time(ec);
            if (ec)
                continue;
            const auto age = fs::file_time_type::clock::now() - mtime;
            if (age < std::chrono::seconds(kCacheTmpGraceSeconds))
                continue;
            if (fs::remove(path, ec))
                stats.tmpRemoved++;
            continue;
        }
        if (name.size() < 5 || name.substr(name.size() - 5) != ".snap")
            continue;

        stats.scanned++;
        stats.bytesBefore += size;

        bool keep = false;
        if (std::optional<std::string> bytes = slurp(path))
            keep = parseFrame(*bytes, epoch, nullptr, nullptr).has_value();
        if (!keep) {
            if (fs::remove(path, ec))
                stats.staleEvicted++;
            continue;
        }
        live.push_back(Entry{path, size, de.last_write_time(ec)});
    }

    std::uint64_t total = 0;
    for (const Entry &e : live)
        total += e.size;

    if (max_bytes && total > max_bytes) {
        std::sort(live.begin(), live.end(),
                  [](const Entry &a, const Entry &b) {
                      if (a.mtime != b.mtime)
                          return a.mtime < b.mtime;
                      return a.path < b.path;
                  });
        for (const Entry &e : live) {
            if (total <= max_bytes)
                break;
            if (fs::remove(e.path, ec)) {
                stats.lruEvicted++;
                total -= e.size;
            }
        }
    }
    stats.bytesAfter = total;
    return stats;
}

} // namespace dynaspam::runner
