#include "runner/job.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"
#include "workloads/workload.hh"

namespace dynaspam::runner
{

const char *
fidelityName(Fidelity fidelity)
{
    return fidelity == Fidelity::Sampled ? "sampled" : "full";
}

Fidelity
parseFidelity(const std::string &token)
{
    if (token == "full")
        return Fidelity::Full;
    if (token == "sampled")
        return Fidelity::Sampled;
    fatal("unknown fidelity \"", token, "\" (expected full or sampled)");
}

std::string
Job::key() const
{
    // The workload tag is canonicalized so "bfs" and "BFS" are the same
    // cache entry.
    std::ostringstream os;
    os << workloads::canonicalWorkloadName(workload) << "|"
       << sim::modeName(mode) << "|" << traceLength << "|" << numFabrics
       << "|" << scale << "|" << warmupInsts << "|"
       << fidelityName(fidelity);
    return os.str();
}

std::uint64_t
Job::hash() const
{
    // FNV-1a, 64-bit: stable across platforms, good enough dispersion
    // for cache file naming (collisions additionally guarded by storing
    // the full key inside the cache file).
    const std::string k = key();
    return bits::fnv1a(k.data(), k.size());
}

std::string
Job::hashHex() const
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash()));
    return std::string(buf);
}

std::string
forkGroupKey(const Job &job)
{
    std::ostringstream os;
    os << workloads::canonicalWorkloadName(job.workload) << "|"
       << job.scale << "|" << job.traceLength << "|"
       << (job.mode != sim::SystemMode::BaselineOoo) << "|"
       << job.warmupInsts << "|" << fidelityName(job.fidelity);
    return os.str();
}

std::uint64_t
forkGroupHash(const Job &job)
{
    if (job.warmupInsts == 0)
        return job.hash();
    const std::string k = forkGroupKey(job);
    return bits::fnv1a(k.data(), k.size());
}

sim::SystemMode
parseMode(const std::string &token)
{
    for (sim::SystemMode mode :
         {sim::SystemMode::BaselineOoo, sim::SystemMode::MappingOnly,
          sim::SystemMode::AccelNoSpec, sim::SystemMode::AccelSpec,
          sim::SystemMode::AccelNaive}) {
        if (token == sim::modeName(mode))
            return mode;
    }
    fatal("unknown system mode \"", token,
          "\" (expected baseline-ooo, mapping-only, accel-nospec, "
          "accel-spec or accel-naive)");
}

std::vector<Job>
sweepJobs(const std::string &sweep,
          const std::vector<std::string> &workloads, unsigned scale,
          unsigned trace_length)
{
    std::vector<Job> jobs;
    auto add = [&](const std::string &wl, sim::SystemMode mode,
                   unsigned len, unsigned fabrics) {
        jobs.push_back(Job{wl, mode, len, fabrics, scale});
    };

    for (const std::string &wl : workloads) {
        if (sweep == "fig7") {
            for (unsigned len : {16u, 24u, 32u, 40u})
                add(wl, sim::SystemMode::AccelSpec, len, 1);
        } else if (sweep == "fig8") {
            for (sim::SystemMode mode :
                 {sim::SystemMode::BaselineOoo, sim::SystemMode::MappingOnly,
                  sim::SystemMode::AccelNoSpec, sim::SystemMode::AccelSpec})
                add(wl, mode, trace_length, 1);
        } else if (sweep == "fig9") {
            for (sim::SystemMode mode :
                 {sim::SystemMode::BaselineOoo, sim::SystemMode::AccelSpec})
                add(wl, mode, trace_length, 1);
        } else if (sweep == "table5") {
            for (unsigned fabrics : {1u, 2u, 4u, 8u})
                add(wl, sim::SystemMode::AccelSpec, trace_length, fabrics);
        } else if (sweep == "ablation-mapper") {
            for (sim::SystemMode mode :
                 {sim::SystemMode::AccelSpec, sim::SystemMode::AccelNaive})
                add(wl, mode, trace_length, 1);
        } else {
            fatal("unknown sweep \"", sweep, "\"");
        }
    }
    return jobs;
}

std::string
traceFileStem(const Job &job)
{
    std::string stem = job.key();
    for (char &c : stem) {
        if (c == '|')
            c = '_';
    }
    return stem;
}

sim::RunResult
finishSimulation(const Job &job, sim::Simulation &simu)
{
    if (job.fidelity == Fidelity::Full) {
        simu.runToCompletion();
        return simu.collectResult();
    }

    // Sampled: detailed warmup prefix (a restored fork may already be
    // past it), then one detailed measurement window.
    while (!simu.done() && simu.committedInsts() < job.warmupInsts)
        simu.tick();
    const std::uint64_t warmInsts = simu.committedInsts();
    const Cycle warmCycles = simu.now();

    const std::uint64_t target = warmInsts + kSampledWindowInsts;
    while (!simu.done() && simu.committedInsts() < target)
        simu.tick();

    sim::RunResult result = simu.collectResult();
    result.sampled = true;
    result.sampledInsts = simu.committedInsts();
    result.sampledCycles = simu.now();
    if (!simu.done()) {
        // Extrapolate the rest of the trace at the window CPI. Pure
        // integer arithmetic (round-to-nearest) keeps the result
        // deterministic across platforms.
        const std::uint64_t winInsts = simu.committedInsts() - warmInsts;
        const std::uint64_t winCycles = simu.now() - warmCycles;
        const std::uint64_t total = simu.simInput().trace().size();
        const std::uint64_t rest = total - simu.committedInsts();
        const std::uint64_t div = winInsts ? winInsts : 1;
        result.cycles =
            simu.now() + (rest * winCycles + div / 2) / div;
        result.instsTotal = total;
    }
    return result;
}

sim::RunResult
execute(const Job &job, trace::TraceSink *sink)
{
    workloads::Workload wl = workloads::makeWorkload(job.workload,
                                                     job.scale);
    sim::SystemConfig cfg = sim::SystemConfig::make(job.mode,
                                                    job.traceLength,
                                                    job.numFabrics);
    cfg.traceSink = sink;
    // Construct-and-drive is exactly System::run for full fidelity;
    // routing through Simulation lets finishSimulation own the sampled
    // stop rule for straight and forked execution alike.
    sim::Simulation simu(cfg,
                         sim::SimInput::make(wl.program, wl.initialMemory));
    return finishSimulation(job, simu);
}

sim::RunResult
execute(const Job &job)
{
    if (trace::compiledIn() && trace::envRequested()) {
        trace::TraceSink sink;
        sim::RunResult result = execute(job, &sink);
        sink.writeFiles(trace::envTraceDir() + "/" + traceFileStem(job) +
                        ".trace.json");
        return result;
    }
    return execute(job, nullptr);
}

} // namespace dynaspam::runner
