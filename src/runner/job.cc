#include "runner/job.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "common/types.hh"
#include "workloads/workload.hh"

namespace dynaspam::runner
{

std::string
Job::key() const
{
    // The workload tag is canonicalized so "bfs" and "BFS" are the same
    // cache entry.
    std::ostringstream os;
    os << workloads::canonicalWorkloadName(workload) << "|"
       << sim::modeName(mode) << "|" << traceLength << "|" << numFabrics
       << "|" << scale;
    return os.str();
}

std::uint64_t
Job::hash() const
{
    // FNV-1a, 64-bit: stable across platforms, good enough dispersion
    // for cache file naming (collisions additionally guarded by storing
    // the full key inside the cache file).
    const std::string k = key();
    return bits::fnv1a(k.data(), k.size());
}

std::string
Job::hashHex() const
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash()));
    return std::string(buf);
}

sim::SystemMode
parseMode(const std::string &token)
{
    for (sim::SystemMode mode :
         {sim::SystemMode::BaselineOoo, sim::SystemMode::MappingOnly,
          sim::SystemMode::AccelNoSpec, sim::SystemMode::AccelSpec,
          sim::SystemMode::AccelNaive}) {
        if (token == sim::modeName(mode))
            return mode;
    }
    fatal("unknown system mode \"", token,
          "\" (expected baseline-ooo, mapping-only, accel-nospec, "
          "accel-spec or accel-naive)");
}

std::vector<Job>
sweepJobs(const std::string &sweep,
          const std::vector<std::string> &workloads, unsigned scale,
          unsigned trace_length)
{
    std::vector<Job> jobs;
    auto add = [&](const std::string &wl, sim::SystemMode mode,
                   unsigned len, unsigned fabrics) {
        jobs.push_back(Job{wl, mode, len, fabrics, scale});
    };

    for (const std::string &wl : workloads) {
        if (sweep == "fig7") {
            for (unsigned len : {16u, 24u, 32u, 40u})
                add(wl, sim::SystemMode::AccelSpec, len, 1);
        } else if (sweep == "fig8") {
            for (sim::SystemMode mode :
                 {sim::SystemMode::BaselineOoo, sim::SystemMode::MappingOnly,
                  sim::SystemMode::AccelNoSpec, sim::SystemMode::AccelSpec})
                add(wl, mode, trace_length, 1);
        } else if (sweep == "fig9") {
            for (sim::SystemMode mode :
                 {sim::SystemMode::BaselineOoo, sim::SystemMode::AccelSpec})
                add(wl, mode, trace_length, 1);
        } else if (sweep == "table5") {
            for (unsigned fabrics : {1u, 2u, 4u, 8u})
                add(wl, sim::SystemMode::AccelSpec, trace_length, fabrics);
        } else if (sweep == "ablation-mapper") {
            for (sim::SystemMode mode :
                 {sim::SystemMode::AccelSpec, sim::SystemMode::AccelNaive})
                add(wl, mode, trace_length, 1);
        } else {
            fatal("unknown sweep \"", sweep, "\"");
        }
    }
    return jobs;
}

std::string
traceFileStem(const Job &job)
{
    std::string stem = job.key();
    for (char &c : stem) {
        if (c == '|')
            c = '_';
    }
    return stem;
}

sim::RunResult
execute(const Job &job, trace::TraceSink *sink)
{
    workloads::Workload wl = workloads::makeWorkload(job.workload,
                                                     job.scale);
    sim::SystemConfig cfg = sim::SystemConfig::make(job.mode,
                                                    job.traceLength,
                                                    job.numFabrics);
    cfg.traceSink = sink;
    sim::System system(cfg);
    return system.run(wl.program, wl.initialMemory);
}

sim::RunResult
execute(const Job &job)
{
    if (trace::compiledIn() && trace::envRequested()) {
        trace::TraceSink sink;
        sim::RunResult result = execute(job, &sink);
        sink.writeFiles(trace::envTraceDir() + "/" + traceFileStem(job) +
                        ".trace.json");
        return result;
    }
    return execute(job, nullptr);
}

} // namespace dynaspam::runner
