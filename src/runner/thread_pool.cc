#include "runner/thread_pool.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace dynaspam::runner
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    deques.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        deques.push_back(std::make_unique<WorkerDeque>());
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        shutdown = true;
    }
    workAvailable.notify_all();
    for (std::thread &t : threads)
        t.join();
}

std::size_t
ThreadPool::queuedTasks() const
{
    std::lock_guard<std::mutex> lock(poolMutex);
    return pending;
}

unsigned
ThreadPool::defaultWorkers(unsigned fallback)
{
    if (const char *env = std::getenv("DYNASPAM_JOBS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return unsigned(n);
    }
    if (fallback == 0) {
        fallback = std::thread::hardware_concurrency();
        if (fallback == 0)
            fallback = 1;
    }
    return fallback;
}

void
ThreadPool::submit(std::function<void()> task)
{
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        // Count before pushing: a worker that wins the race to the
        // deque can only ever see pending >= the true queue length,
        // never less, so no wakeup is lost.
        pending++;
        target = nextDeque;
        nextDeque = (nextDeque + 1) % deques.size();
    }
    {
        WorkerDeque &dq = *deques[target];
        std::lock_guard<std::mutex> dlock(dq.mutex);
        dq.tasks.push_back(std::move(task));
    }
    workAvailable.notify_one();
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    // Per-batch completion state; several batches (from different
    // caller threads) can be in flight at once.
    struct Batch
    {
        std::mutex mutex;
        std::condition_variable done;
        std::size_t remaining;
        std::exception_ptr firstError;
    };
    auto batch = std::make_shared<Batch>();
    batch->remaining = n;

    for (std::size_t i = 0; i < n; i++) {
        // `fn` is captured by reference: this call blocks until every
        // task has finished, so the reference outlives all of them.
        submit([batch, &fn, i] {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(batch->mutex);
                if (!batch->firstError)
                    batch->firstError = std::current_exception();
            }
            bool last = false;
            {
                std::lock_guard<std::mutex> lock(batch->mutex);
                last = --batch->remaining == 0;
            }
            if (last)
                batch->done.notify_all();
        });
    }

    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done.wait(lock, [&] { return batch->remaining == 0; });
    if (batch->firstError)
        std::rethrow_exception(batch->firstError);
}

bool
ThreadPool::popOwn(std::size_t self, std::function<void()> &task)
{
    WorkerDeque &dq = *deques[self];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.tasks.empty())
        return false;
    task = std::move(dq.tasks.front());
    dq.tasks.pop_front();
    return true;
}

bool
ThreadPool::stealOther(std::size_t self, std::function<void()> &task)
{
    for (std::size_t k = 1; k < deques.size(); k++) {
        WorkerDeque &dq = *deques[(self + k) % deques.size()];
        std::lock_guard<std::mutex> lock(dq.mutex);
        if (dq.tasks.empty())
            continue;
        task = std::move(dq.tasks.back());
        dq.tasks.pop_back();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    while (true) {
        std::function<void()> task;
        if (popOwn(self, task) || stealOther(self, task)) {
            {
                std::lock_guard<std::mutex> lock(poolMutex);
                pending--;
            }
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(poolMutex);
        workAvailable.wait(lock,
                           [&] { return shutdown || pending > 0; });
        if (shutdown && pending == 0)
            return;
        // pending > 0: a task is (about to be) queued somewhere; loop
        // around and race the other workers for it. On shutdown this
        // drains every queued task before the worker exits.
    }
}

} // namespace dynaspam::runner
