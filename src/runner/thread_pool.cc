#include "runner/thread_pool.hh"

#include <cstdlib>
#include <memory>

#include "common/logging.hh"

namespace dynaspam::runner
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    deques.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        deques.push_back(std::make_unique<WorkerDeque>());
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(batchMutex);
        shutdown = true;
    }
    workAvailable.notify_all();
    for (std::thread &t : threads)
        t.join();
}

unsigned
ThreadPool::defaultWorkers(unsigned fallback)
{
    if (const char *env = std::getenv("DYNASPAM_JOBS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return unsigned(n);
    }
    if (fallback == 0) {
        fallback = std::thread::hardware_concurrency();
        if (fallback == 0)
            fallback = 1;
    }
    return fallback;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    {
        std::lock_guard<std::mutex> lock(batchMutex);
        if (batchFn)
            panic("ThreadPool::parallelFor is not reentrant");
        batchFn = &fn;
        remaining = n;
        firstError = nullptr;
        // Deal indices round-robin; workers are idle so deque locks are
        // uncontended here.
        for (std::size_t i = 0; i < n; i++) {
            WorkerDeque &dq = *deques[i % deques.size()];
            std::lock_guard<std::mutex> dlock(dq.mutex);
            dq.tasks.push_back(i);
        }
        generation++;
    }
    workAvailable.notify_all();

    std::unique_lock<std::mutex> lock(batchMutex);
    batchDone.wait(lock, [this] { return remaining == 0; });
    batchFn = nullptr;
    if (firstError)
        std::rethrow_exception(firstError);
}

bool
ThreadPool::popOwn(std::size_t self, std::size_t &index)
{
    WorkerDeque &dq = *deques[self];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.tasks.empty())
        return false;
    index = dq.tasks.front();
    dq.tasks.pop_front();
    return true;
}

bool
ThreadPool::stealOther(std::size_t self, std::size_t &index)
{
    for (std::size_t k = 1; k < deques.size(); k++) {
        WorkerDeque &dq = *deques[(self + k) % deques.size()];
        std::lock_guard<std::mutex> lock(dq.mutex);
        if (dq.tasks.empty())
            continue;
        index = dq.tasks.back();
        dq.tasks.pop_back();
        return true;
    }
    return false;
}

void
ThreadPool::runTask(std::size_t index)
{
    try {
        (*batchFn)(index);
    } catch (...) {
        std::lock_guard<std::mutex> lock(batchMutex);
        if (!firstError)
            firstError = std::current_exception();
    }
    bool last = false;
    {
        std::lock_guard<std::mutex> lock(batchMutex);
        last = --remaining == 0;
    }
    if (last)
        batchDone.notify_all();
}

void
ThreadPool::workerLoop(std::size_t self)
{
    std::uint64_t seen_generation = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(batchMutex);
            workAvailable.wait(lock, [&] {
                return shutdown || generation != seen_generation;
            });
            if (shutdown)
                return;
            seen_generation = generation;
        }
        std::size_t index;
        while (popOwn(self, index) || stealOther(self, index))
            runTask(index);
    }
}

} // namespace dynaspam::runner
