#include "runner/thread_pool.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace dynaspam::runner
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    deques.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        deques.push_back(std::make_unique<WorkerDeque>());
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        common::MutexLock lock(poolMutex);
        shutdown = true;
    }
    workAvailable.notifyAll();
    for (std::thread &t : threads)
        t.join();
}

std::size_t
ThreadPool::queuedTasks() const
{
    common::MutexLock lock(poolMutex);
    return pending;
}

unsigned
ThreadPool::defaultWorkers(unsigned fallback)
{
    // Worker-count plumbing: the thread count never reaches simulated
    // state (results are worker-invariant).
    // analyze-allow(determinism): host knob, not model state
    if (const char *env = std::getenv("DYNASPAM_JOBS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return unsigned(n);
    }
    if (fallback == 0) {
        fallback = std::thread::hardware_concurrency();
        if (fallback == 0)
            fallback = 1;
    }
    return fallback;
}

void
ThreadPool::submit(std::function<void()> task)
{
    std::size_t target;
    {
        common::MutexLock lock(poolMutex);
        // Count before pushing: a worker that wins the race to the
        // deque can only ever see pending >= the true queue length,
        // never less, so no wakeup is lost.
        pending++;
        target = nextDeque;
        nextDeque = (nextDeque + 1) % deques.size();
    }
    {
        WorkerDeque &dq = *deques[target];
        common::MutexLock dlock(dq.mutex);
        dq.tasks.push_back(std::move(task));
    }
    workAvailable.notifyOne();
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    // Per-batch completion state; several batches (from different
    // caller threads) can be in flight at once.
    struct Batch
    {
        common::Mutex mutex;
        common::CondVar done;
        std::size_t remaining GUARDED_BY(mutex);
        std::exception_ptr firstError GUARDED_BY(mutex);
    };
    auto batch = std::make_shared<Batch>();
    {
        common::MutexLock lock(batch->mutex);
        batch->remaining = n;
    }

    for (std::size_t i = 0; i < n; i++) {
        // `fn` is captured by reference: this call blocks until every
        // task has finished, so the reference outlives all of them.
        submit([batch, &fn, i] {
            try {
                fn(i);
            } catch (...) {
                common::MutexLock lock(batch->mutex);
                if (!batch->firstError)
                    batch->firstError = std::current_exception();
            }
            bool last = false;
            {
                common::MutexLock lock(batch->mutex);
                last = --batch->remaining == 0;
            }
            if (last)
                batch->done.notifyAll();
        });
    }

    common::MutexLock lock(batch->mutex);
    while (batch->remaining != 0)
        batch->done.wait(batch->mutex);
    if (batch->firstError)
        std::rethrow_exception(batch->firstError);
}

bool
ThreadPool::popOwn(std::size_t self, std::function<void()> &task)
{
    WorkerDeque &dq = *deques[self];
    common::MutexLock lock(dq.mutex);
    if (dq.tasks.empty())
        return false;
    task = std::move(dq.tasks.front());
    dq.tasks.pop_front();
    return true;
}

bool
ThreadPool::stealOther(std::size_t self, std::function<void()> &task)
{
    for (std::size_t k = 1; k < deques.size(); k++) {
        WorkerDeque &dq = *deques[(self + k) % deques.size()];
        common::MutexLock lock(dq.mutex);
        if (dq.tasks.empty())
            continue;
        task = std::move(dq.tasks.back());
        dq.tasks.pop_back();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    while (true) {
        std::function<void()> task;
        if (popOwn(self, task) || stealOther(self, task)) {
            {
                common::MutexLock lock(poolMutex);
                pending--;
            }
            task();
            continue;
        }
        common::MutexLock lock(poolMutex);
        while (!shutdown && pending == 0)
            workAvailable.wait(poolMutex);
        if (shutdown && pending == 0)
            return;
        // pending > 0: a task is (about to be) queued somewhere; loop
        // around and race the other workers for it. On shutdown this
        // drains every queued task before the worker exits.
    }
}

} // namespace dynaspam::runner
