#include "runner/runner.hh"

#include <atomic>
#include <cstddef>
#include <map>
#include <sstream>

#include "check/check.hh"
#include "check/snapshot_audit.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace dynaspam::runner
{
namespace
{

/** Commit interval between safe snapshots during a group warmup. */
constexpr std::uint64_t kSafeSnapshotInterval = 8192;

/**
 * Jobs fork together when they agree on everything the warmup prefix
 * can observe: the input (workload, scale), the trace-detection
 * geometry (traceLength), controller presence, and the stop rule
 * (warmupInsts, fidelity). Mode and numFabrics may differ within a
 * group; the WarmupGuard catches the first prefix decision that would
 * notice the difference.
 */
std::string
forkGroupKey(const Job &job)
{
    std::ostringstream os;
    os << workloads::canonicalWorkloadName(job.workload) << "|"
       << job.scale << "|" << job.traceLength << "|"
       << (job.mode != sim::SystemMode::BaselineOoo) << "|"
       << job.warmupInsts << "|" << fidelityName(job.fidelity);
    return os.str();
}

/** Which warmup-relevant knobs actually differ across @p group. */
core::WarmupGuard
groupGuard(const std::vector<Job> &jobs,
           const std::vector<std::size_t> &group)
{
    core::WarmupGuard guard;
    const Job &rep = jobs[group.front()];
    const sim::SystemConfig repCfg = sim::SystemConfig::make(
        rep.mode, rep.traceLength, rep.numFabrics);
    for (std::size_t idx : group) {
        const Job &job = jobs[idx];
        const sim::SystemConfig cfg = sim::SystemConfig::make(
            job.mode, job.traceLength, job.numFabrics);
        if (cfg.dynaspam.enableOffload != repCfg.dynaspam.enableOffload)
            guard.offloadDiverges = true;
        if (cfg.dynaspam.fabricParams.memorySpeculation !=
            repCfg.dynaspam.fabricParams.memorySpeculation)
            guard.memSpecDiverges = true;
        if (cfg.dynaspam.mapper != repCfg.dynaspam.mapper)
            guard.mapperDiverges = true;
        if (cfg.dynaspam.numFabrics != repCfg.dynaspam.numFabrics)
            guard.numFabricsDiverges = true;
    }
    return guard;
}

/**
 * Execute one fork group: warm the shared prefix once under the
 * representative (front) configuration, then fork every member from
 * the warmed snapshot. Byte-identical to running each job straight
 * through: the warmup only advances past decisions that are invariant
 * across the group (the guard aborts it to the last safe snapshot the
 * moment a divergent knob would be consulted), and each fork finishes
 * under its own configuration via the same finishSimulation stop rule
 * the straight path uses.
 */
void
runGroup(const std::vector<Job> &jobs,
         const std::vector<std::size_t> &group,
         std::vector<JobOutcome> &outcomes, ResultCache &cache)
{
    const Job &rep = jobs[group.front()];
    workloads::Workload wl =
        workloads::makeWorkload(rep.workload, rep.scale);
    auto input = sim::SimInput::make(wl.program, wl.initialMemory);

    // Phase A: shared warmup, snapshotting at commit boundaries so a
    // guard fire only discards the tail since the last safe point.
    const sim::SystemConfig repCfg = sim::SystemConfig::make(
        rep.mode, rep.traceLength, rep.numFabrics);
    core::WarmupGuard guard = groupGuard(jobs, group);
    sim::Simulation warm(repCfg, input);
    warm.setWarmupGuard(&guard);

    sim::Snapshot safe;
    warm.snapshot(safe);
    std::uint64_t nextSafe = kSafeSnapshotInterval;
    while (!warm.done() && !guard.fired &&
           warm.committedInsts() < rep.warmupInsts) {
        warm.tick();
        if (guard.fired)
            break;
        if (warm.committedInsts() >= nextSafe) {
            warm.snapshot(safe);
            nextSafe = warm.committedInsts() + kSafeSnapshotInterval;
        }
    }
    if (!guard.fired)
        warm.snapshot(safe);

    // Phase B: fork each member from the warmed snapshot.
    for (std::size_t idx : group) {
        const Job &job = jobs[idx];
        const sim::SystemConfig cfg = sim::SystemConfig::make(
            job.mode, job.traceLength, job.numFabrics);
        sim::Simulation fork(cfg, input);
        fork.restore(safe);
        // Checked builds prove the restore round-trips exactly. Only
        // meaningful when the fork's fabric-pool geometry matches the
        // warmup's — a smaller/larger pool legitimately re-saves with a
        // different fabrics vector.
        if (check::enabled() &&
            cfg.dynaspam.numFabrics == repCfg.dynaspam.numFabrics) {
            sim::Snapshot echo;
            fork.snapshot(echo);
            check::ViolationSink vsink;     // aborts on mismatch
            check::auditSnapshotRoundTrip(safe, echo, vsink, fork.now());
        }
        sim::RunResult result = finishSimulation(job, fork);
        cache.store(job, result);
        outcomes[idx] = JobOutcome{job, std::move(result), false};
    }
}

} // namespace

Runner::Runner(RunnerOptions options_)
    : options(std::move(options_)),
      pool(options.jobs ? options.jobs : ThreadPool::defaultWorkers()),
      resultCache(options.cacheDir)
{
}

std::vector<JobOutcome>
Runner::runAll(const std::vector<Job> &jobs)
{
    std::vector<JobOutcome> outcomes(jobs.size());
    std::atomic<std::uint64_t> hits{0}, misses{0};

    // Env-requested tracing wants every job to actually simulate (a
    // cache hit would record no events), and the traced runs must not
    // poison the cache for future untraced sweeps, so bypass both ends.
    // Tracing also forces straight-through execution: a forked run
    // would record no warmup events.
    const bool tracing = trace::compiledIn() && trace::envRequested();

    // Probe the cache for every job first so fork groups are built from
    // actual misses only.
    std::vector<char> isMiss(jobs.size(), 1);
    pool.parallelFor(jobs.size(), [&](std::size_t i) {
        if (tracing)
            return;
        if (auto cached = resultCache.load(jobs[i])) {
            outcomes[i] = JobOutcome{jobs[i], std::move(*cached), true};
            isMiss[i] = 0;
            hits++;
        }
    });

    // Partition the misses into work units — fork groups plus
    // straight-through singles — in job-list order, so the outcome
    // vector (and the cache bookkeeping) is identical for any worker
    // count and for fork vs no-fork execution.
    std::vector<std::vector<std::size_t>> units;
    {
        std::map<std::string, std::size_t> groupOf;
        for (std::size_t i = 0; i < jobs.size(); i++) {
            if (!isMiss[i])
                continue;
            if (!options.forkSweeps || tracing ||
                jobs[i].warmupInsts == 0) {
                units.push_back({i});
                continue;
            }
            auto [it, fresh] =
                groupOf.try_emplace(forkGroupKey(jobs[i]), units.size());
            if (fresh)
                units.emplace_back();
            units[it->second].push_back(i);
        }
    }

    pool.parallelFor(units.size(), [&](std::size_t u) {
        const std::vector<std::size_t> &unit = units[u];
        if (unit.size() == 1) {
            const Job &job = jobs[unit.front()];
            sim::RunResult result = execute(job);
            if (!tracing)
                resultCache.store(job, result);
            outcomes[unit.front()] =
                JobOutcome{job, std::move(result), false};
        } else {
            runGroup(jobs, unit, outcomes, resultCache);
        }
        misses += unit.size();
    });

    registry.counter("runner.jobs_total").inc(jobs.size());
    registry.counter("runner.cache_hits").inc(hits.load());
    registry.counter("runner.cache_misses").inc(misses.load());
    registry.counter("runner.jobs_executed").inc(misses.load());
    return outcomes;
}

} // namespace dynaspam::runner
