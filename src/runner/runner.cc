#include "runner/runner.hh"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <map>
#include <sstream>

#include "check/check.hh"
#include "check/snapshot_audit.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"
#include "sim/snapshot_io.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace dynaspam::runner
{
namespace
{

/** Commit interval between safe snapshots during a group warmup. */
constexpr std::uint64_t kSafeSnapshotInterval = 8192;

/** Which warmup-relevant knobs actually differ across @p group. */
core::WarmupGuard
groupGuard(const std::vector<Job> &jobs,
           const std::vector<std::size_t> &group)
{
    core::WarmupGuard guard;
    const Job &rep = jobs[group.front()];
    const sim::SystemConfig repCfg = sim::SystemConfig::make(
        rep.mode, rep.traceLength, rep.numFabrics);
    for (std::size_t idx : group) {
        const Job &job = jobs[idx];
        const sim::SystemConfig cfg = sim::SystemConfig::make(
            job.mode, job.traceLength, job.numFabrics);
        if (cfg.dynaspam.enableOffload != repCfg.dynaspam.enableOffload)
            guard.offloadDiverges = true;
        if (cfg.dynaspam.fabricParams.memorySpeculation !=
            repCfg.dynaspam.fabricParams.memorySpeculation)
            guard.memSpecDiverges = true;
        if (cfg.dynaspam.mapper != repCfg.dynaspam.mapper)
            guard.mapperDiverges = true;
        if (cfg.dynaspam.numFabrics != repCfg.dynaspam.numFabrics)
            guard.numFabricsDiverges = true;
    }
    return guard;
}

/**
 * Snapshot-cache key for a fork group. The warmed snapshot's bytes are
 * a pure function of the representative job (its key covers workload,
 * scale, mode, geometry, warmup length and fidelity), the guard bits
 * (they decide where the warm pass may stop), and verifier presence
 * (check builds carry golden-model state in the snapshot). Everything
 * else that could change behaviour rolls the cache epoch instead.
 */
std::string
snapshotGroupKey(const Job &rep, const core::WarmupGuard &guard)
{
    std::ostringstream os;
    os << rep.key() << "|guard=" << guard.offloadDiverges
       << guard.memSpecDiverges << guard.mapperDiverges
       << guard.numFabricsDiverges << "|chk=" << check::enabled();
    return os.str();
}

} // namespace

void
runForkGroup(const std::vector<Job> &jobs,
             const std::vector<std::size_t> &group,
             std::vector<JobOutcome> &outcomes, const ResultCache *cache,
             const SnapshotCache *snap_cache, ForkGroupStats *stats)
{
    const Job &rep = jobs[group.front()];
    workloads::Workload wl =
        workloads::makeWorkload(rep.workload, rep.scale);
    auto input = sim::SimInput::make(wl.program, wl.initialMemory);

    const sim::SystemConfig repCfg = sim::SystemConfig::make(
        rep.mode, rep.traceLength, rep.numFabrics);
    core::WarmupGuard guard = groupGuard(jobs, group);
    const bool useSnapCache = snap_cache && snap_cache->enabled();
    const std::string snapKey =
        useSnapCache ? snapshotGroupKey(rep, guard) : std::string();
    const std::uint64_t inputHash =
        useSnapCache ? sim::simInputIdentityHash(*input) : 0;

    // Phase A: obtain the warmed snapshot — from the snapshot cache
    // when a valid entry exists, otherwise by simulating the shared
    // prefix (snapshotting at commit boundaries so a guard fire only
    // discards the tail since the last safe point).
    sim::Snapshot safe;
    bool haveSnapshot = false;
    if (useSnapCache) {
        bool rejected = false;
        if (std::optional<std::string> body =
                snap_cache->load(snapKey, inputHash, &rejected)) {
            // Deserialization re-binds the snapshot to our freshly
            // built input; the restore below additionally requires the
            // component presence (controller, verifier) to match what
            // repCfg would construct, so validate before trusting it.
            if (sim::deserializeSnapshot(*body, input, safe) &&
                safe.controller.has_value() ==
                    (repCfg.mode != sim::SystemMode::BaselineOoo) &&
                safe.verifier.has_value() == check::enabled()) {
                haveSnapshot = true;
                if (stats)
                    stats->snapshotHits++;
            } else {
                rejected = true;
                safe = sim::Snapshot{};
            }
        }
        if (!haveSnapshot && stats) {
            if (rejected)
                stats->snapshotRejects++;
            else
                stats->snapshotMisses++;
        }
    }

    if (!haveSnapshot) {
        sim::Simulation warm(repCfg, input);
        warm.setWarmupGuard(&guard);
        if (stats)
            stats->warmups++;

        warm.snapshot(safe);
        std::uint64_t nextSafe = kSafeSnapshotInterval;
        while (!warm.done() && !guard.fired &&
               warm.committedInsts() < rep.warmupInsts) {
            warm.tick();
            if (guard.fired)
                break;
            if (warm.committedInsts() >= nextSafe) {
                warm.snapshot(safe);
                nextSafe = warm.committedInsts() + kSafeSnapshotInterval;
            }
        }
        if (!guard.fired)
            warm.snapshot(safe);

        if (useSnapCache) {
            std::string body;
            sim::serializeSnapshot(safe, body);
            snap_cache->store(snapKey, inputHash, body);
        }
    }

    // Phase B: fork each member from the warmed snapshot.
    for (std::size_t idx : group) {
        const Job &job = jobs[idx];
        const sim::SystemConfig cfg = sim::SystemConfig::make(
            job.mode, job.traceLength, job.numFabrics);
        sim::Simulation fork(cfg, input);
        fork.restore(safe);
        // Checked builds prove the restore round-trips exactly. Only
        // meaningful when the fork's fabric-pool geometry matches the
        // warmup's — a smaller/larger pool legitimately re-saves with a
        // different fabrics vector.
        if (check::enabled() &&
            cfg.dynaspam.numFabrics == repCfg.dynaspam.numFabrics) {
            sim::Snapshot echo;
            fork.snapshot(echo);
            check::ViolationSink vsink;     // aborts on mismatch
            check::auditSnapshotRoundTrip(safe, echo, vsink, fork.now());
        }
        sim::RunResult result = finishSimulation(job, fork);
        if (cache && cache->enabled())
            cache->store(job, result);
        outcomes[idx] = JobOutcome{job, std::move(result), false};
    }
}

Runner::Runner(RunnerOptions options_)
    : options(std::move(options_)),
      pool(options.jobs ? options.jobs : ThreadPool::defaultWorkers()),
      resultCache(options.cacheDir), snapCache(options.snapshotCacheDir)
{
}

std::vector<JobOutcome>
Runner::runAll(const std::vector<Job> &jobs)
{
    std::vector<JobOutcome> outcomes(jobs.size());
    std::atomic<std::uint64_t> hits{0}, misses{0};

    // Env-requested tracing wants every job to actually simulate (a
    // cache hit would record no events), and the traced runs must not
    // poison the cache for future untraced sweeps, so bypass both ends.
    // Tracing also forces straight-through execution: a forked run
    // would record no warmup events.
    const bool tracing = trace::compiledIn() && trace::envRequested();

    // Probe the cache for every job first so fork groups are built from
    // actual misses only.
    std::vector<char> isMiss(jobs.size(), 1);
    pool.parallelFor(jobs.size(), [&](std::size_t i) {
        if (tracing)
            return;
        if (auto cached = resultCache.load(jobs[i])) {
            outcomes[i] = JobOutcome{jobs[i], std::move(*cached), true};
            isMiss[i] = 0;
            hits++;
        }
    });

    // Partition the misses into work units — fork groups plus
    // straight-through singles — in job-list order, so the outcome
    // vector (and the cache bookkeeping) is identical for any worker
    // count and for fork vs no-fork execution.
    std::vector<std::vector<std::size_t>> units;
    {
        // Canonical miss order: sort by job hash (key, then index, as
        // tiebreaks) before partitioning, so a fork group's member
        // order — and therefore its warmup representative and fork
        // sequence — does not depend on the caller's job-list order.
        // Outcomes still land by original index, so reports are
        // byte-identical either way.
        std::vector<std::size_t> missOrder;
        for (std::size_t i = 0; i < jobs.size(); i++)
            if (isMiss[i])
                missOrder.push_back(i);
        std::sort(missOrder.begin(), missOrder.end(),
                  [&](std::size_t a, std::size_t b) {
                      const std::uint64_t ha = jobs[a].hash();
                      const std::uint64_t hb = jobs[b].hash();
                      if (ha != hb)
                          return ha < hb;
                      const std::string ka = jobs[a].key();
                      const std::string kb = jobs[b].key();
                      if (ka != kb)
                          return ka < kb;
                      return a < b;
                  });
        std::map<std::string, std::size_t> groupOf;
        for (std::size_t i : missOrder) {
            if (!options.forkSweeps || tracing ||
                jobs[i].warmupInsts == 0) {
                units.push_back({i});
                continue;
            }
            auto [it, fresh] =
                groupOf.try_emplace(forkGroupKey(jobs[i]), units.size());
            if (fresh)
                units.emplace_back();
            units[it->second].push_back(i);
        }
    }

    const std::uint64_t warmupsBefore = groupStats.warmups.load();
    const std::uint64_t snapHitsBefore = groupStats.snapshotHits.load();

    pool.parallelFor(units.size(), [&](std::size_t u) {
        const std::vector<std::size_t> &unit = units[u];
        // A one-member warmup unit still routes through the fork path
        // when the snapshot cache is on: the warm prefix is then loaded
        // from / persisted to disk exactly like a multi-member group.
        const bool grouped =
            unit.size() > 1 ||
            (snapCache.enabled() && !tracing && options.forkSweeps &&
             jobs[unit.front()].warmupInsts > 0);
        if (!grouped) {
            const Job &job = jobs[unit.front()];
            sim::RunResult result = execute(job);
            if (!tracing)
                resultCache.store(job, result);
            outcomes[unit.front()] =
                JobOutcome{job, std::move(result), false};
        } else {
            runForkGroup(jobs, unit, outcomes,
                         tracing ? nullptr : &resultCache,
                         snapCache.enabled() ? &snapCache : nullptr,
                         &groupStats);
        }
        misses += unit.size();
    });

    registry.counter("runner.jobs_total").inc(jobs.size());
    registry.counter("runner.cache_hits").inc(hits.load());
    registry.counter("runner.cache_misses").inc(misses.load());
    registry.counter("runner.jobs_executed").inc(misses.load());
    // Snapshot bookkeeping only exists when the snapshot cache does:
    // reports from snapshot-less runs keep their exact historical
    // bytes (the cluster coordinator synthesizes that stats block).
    if (snapCache.enabled()) {
        registry.counter("runner.warmups")
            .inc(groupStats.warmups.load() - warmupsBefore);
        registry.counter("runner.snapshot_hits")
            .inc(groupStats.snapshotHits.load() - snapHitsBefore);
    }
    return outcomes;
}

} // namespace dynaspam::runner
