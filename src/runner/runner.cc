#include "runner/runner.hh"

#include <atomic>

#include "trace/trace.hh"

namespace dynaspam::runner
{

Runner::Runner(RunnerOptions options_)
    : options(std::move(options_)),
      pool(options.jobs ? options.jobs : ThreadPool::defaultWorkers()),
      resultCache(options.cacheDir)
{
}

std::vector<JobOutcome>
Runner::runAll(const std::vector<Job> &jobs)
{
    std::vector<JobOutcome> outcomes(jobs.size());
    std::atomic<std::uint64_t> hits{0}, misses{0};

    // Env-requested tracing wants every job to actually simulate (a
    // cache hit would record no events), and the traced runs must not
    // poison the cache for future untraced sweeps, so bypass both ends.
    const bool tracing = trace::compiledIn() && trace::envRequested();

    pool.parallelFor(jobs.size(), [&](std::size_t i) {
        const Job &job = jobs[i];
        if (!tracing) {
            if (auto cached = resultCache.load(job)) {
                outcomes[i] = JobOutcome{job, std::move(*cached), true};
                hits++;
                return;
            }
        }
        sim::RunResult result = execute(job);
        if (!tracing)
            resultCache.store(job, result);
        outcomes[i] = JobOutcome{job, std::move(result), false};
        misses++;
    });

    registry.counter("runner.jobs_total").inc(jobs.size());
    registry.counter("runner.cache_hits").inc(hits.load());
    registry.counter("runner.cache_misses").inc(misses.load());
    registry.counter("runner.jobs_executed").inc(misses.load());
    return outcomes;
}

} // namespace dynaspam::runner
