#include "runner/result_cache.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/interrupt.hh"
#include "common/logging.hh"
#include "runner/report.hh"

namespace dynaspam::runner
{

namespace fs = std::filesystem;

namespace
{

/** Read a whole file; empty optional when unopenable. */
std::optional<std::string>
slurp(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/**
 * Refresh @p path's mtime so gc()'s LRU ordering sees this entry as
 * recently used. Best-effort: a failure (e.g. a read-only cache mount)
 * just weakens eviction ordering, never correctness.
 */
void
touch(const std::string &path)
{
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

} // namespace

ResultCache::ResultCache(std::string dir_, std::string epoch_)
    : dir(std::move(dir_)), epoch(std::move(epoch_))
{
}

std::string
ResultCache::pathFor(const Job &job) const
{
    return (fs::path(dir) / (job.hashHex() + ".json")).string();
}

std::optional<sim::RunResult>
ResultCache::load(const Job &job) const
{
    if (!enabled())
        return std::nullopt;

    const std::string path = pathFor(job);
    std::optional<std::string> text = slurp(path);
    if (!text)
        return std::nullopt;

    try {
        json::Value doc = json::Value::parse(*text);
        if (doc.at("epoch").asString() != epoch)
            return std::nullopt;
        if (doc.at("key").asString() != job.key())
            return std::nullopt;
        sim::RunResult result = resultFromJson(doc.at("result"));
        touch(path);
        return result;
    } catch (const FatalError &) {
        // Corrupt or stale-schema entry: fall back to simulation.
        return std::nullopt;
    }
}

std::optional<std::pair<Job, sim::RunResult>>
ResultCache::loadByHash(const std::string &hash_hex) const
{
    if (!enabled())
        return std::nullopt;
    // The stem is attacker-adjacent (it arrives in a URL); only a
    // 16-char lowercase hex string may touch the filesystem.
    if (hash_hex.size() != 16 ||
        hash_hex.find_first_not_of("0123456789abcdef") != std::string::npos)
        return std::nullopt;

    const std::string path =
        (fs::path(dir) / (hash_hex + ".json")).string();
    std::optional<std::string> text = slurp(path);
    if (!text)
        return std::nullopt;

    try {
        json::Value doc = json::Value::parse(*text);
        if (doc.at("epoch").asString() != epoch)
            return std::nullopt;
        Job job = jobFromJson(doc.at("job"));
        if (doc.at("key").asString() != job.key())
            return std::nullopt;
        sim::RunResult result = resultFromJson(doc.at("result"));
        touch(path);
        return std::make_pair(std::move(job), std::move(result));
    } catch (const FatalError &) {
        return std::nullopt;
    }
}

void
ResultCache::store(const Job &job, const sim::RunResult &result) const
{
    if (!enabled())
        return;

    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("result cache: cannot create ", dir, ": ", ec.message());
        return;
    }

    json::Object doc;
    doc.emplace("epoch", epoch);
    doc.emplace("key", job.key());
    doc.emplace("job", jobToJson(job));
    doc.emplace("result", resultToJson(result));

    const std::string final_path = pathFor(job);
    // Unique temp name per writer so concurrent stores never interleave;
    // rename() is atomic within a filesystem.
    std::ostringstream tmp_name;
    tmp_name << final_path << ".tmp." << ::getpid() << "."
             << std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string tmp_path = tmp_name.str();

    // Register the temp file so a SIGINT that lands mid-write unlinks
    // it instead of stranding writer litter in the cache directory.
    const int cleanup = interrupt::registerCleanupFile(tmp_path.c_str());

    {
        std::ofstream out(tmp_path);
        if (!out) {
            warn("result cache: cannot write ", tmp_path);
            interrupt::unregisterCleanupFile(cleanup);
            return;
        }
        json::Value(std::move(doc)).write(out, 2);
        out << "\n";
    }
    fs::rename(tmp_path, final_path, ec);
    interrupt::unregisterCleanupFile(cleanup);
    if (ec) {
        warn("result cache: rename to ", final_path, " failed: ",
             ec.message());
        fs::remove(tmp_path, ec);
    }
}

CacheGcStats
ResultCache::gc(std::uint64_t max_bytes) const
{
    CacheGcStats stats;
    if (!enabled())
        return stats;

    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return stats;    // absent directory: nothing to collect

    struct Entry
    {
        std::string path;
        std::uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<Entry> live;

    for (const fs::directory_entry &de : it) {
        if (!de.is_regular_file(ec) || ec)
            continue;
        const std::string path = de.path().string();
        const std::string name = de.path().filename().string();
        const std::uint64_t size = de.file_size(ec);
        if (ec)
            continue;

        // Writer litter from crashed/killed processes. Fresh temp files
        // (younger than the grace window) belong to live writers racing
        // this gc and must survive, or the racing store would lose its
        // file mid-write and strand the writer.
        if (name.find(".tmp.") != std::string::npos) {
            const fs::file_time_type mtime = de.last_write_time(ec);
            if (ec)
                continue;
            const auto age = fs::file_time_type::clock::now() - mtime;
            if (age < std::chrono::seconds(kCacheTmpGraceSeconds))
                continue;
            if (fs::remove(path, ec))
                stats.tmpRemoved++;
            continue;
        }
        if (name.size() < 5 || name.substr(name.size() - 5) != ".json")
            continue;

        stats.scanned++;
        stats.bytesBefore += size;

        bool keep = false;
        if (std::optional<std::string> text = slurp(path)) {
            try {
                json::Value doc = json::Value::parse(*text);
                keep = doc.at("epoch").asString() == epoch;
            } catch (const FatalError &) {
                keep = false;
            }
        }
        if (!keep) {
            if (fs::remove(path, ec))
                stats.staleEvicted++;
            continue;
        }
        live.push_back(Entry{path, size, de.last_write_time(ec)});
    }

    std::uint64_t total = 0;
    for (const Entry &e : live)
        total += e.size;

    if (max_bytes && total > max_bytes) {
        // Oldest mtime first; load() touches entries on every hit, so
        // this is true least-recently-used order. Path is the
        // tie-breaker to keep eviction deterministic for equal mtimes.
        std::sort(live.begin(), live.end(),
                  [](const Entry &a, const Entry &b) {
                      if (a.mtime != b.mtime)
                          return a.mtime < b.mtime;
                      return a.path < b.path;
                  });
        for (const Entry &e : live) {
            if (total <= max_bytes)
                break;
            if (fs::remove(e.path, ec)) {
                stats.lruEvicted++;
                total -= e.size;
            }
        }
    }
    stats.bytesAfter = total;
    return stats;
}

} // namespace dynaspam::runner
