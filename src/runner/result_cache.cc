#include "runner/result_cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "runner/report.hh"

namespace dynaspam::runner
{

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir_, std::string epoch_)
    : dir(std::move(dir_)), epoch(std::move(epoch_))
{
}

std::string
ResultCache::pathFor(const Job &job) const
{
    return (fs::path(dir) / (job.hashHex() + ".json")).string();
}

std::optional<sim::RunResult>
ResultCache::load(const Job &job) const
{
    if (!enabled())
        return std::nullopt;

    std::ifstream in(pathFor(job));
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();

    try {
        json::Value doc = json::Value::parse(buffer.str());
        if (doc.at("epoch").asString() != epoch)
            return std::nullopt;
        if (doc.at("key").asString() != job.key())
            return std::nullopt;
        return resultFromJson(doc.at("result"));
    } catch (const FatalError &) {
        // Corrupt or stale-schema entry: fall back to simulation.
        return std::nullopt;
    }
}

void
ResultCache::store(const Job &job, const sim::RunResult &result) const
{
    if (!enabled())
        return;

    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("result cache: cannot create ", dir, ": ", ec.message());
        return;
    }

    json::Object doc;
    doc.emplace("epoch", epoch);
    doc.emplace("key", job.key());
    doc.emplace("job", jobToJson(job));
    doc.emplace("result", resultToJson(result));

    const std::string final_path = pathFor(job);
    // Unique temp name per writer so concurrent stores never interleave;
    // rename() is atomic within a filesystem.
    std::ostringstream tmp_name;
    tmp_name << final_path << ".tmp." << ::getpid() << "."
             << std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string tmp_path = tmp_name.str();

    {
        std::ofstream out(tmp_path);
        if (!out) {
            warn("result cache: cannot write ", tmp_path);
            return;
        }
        json::Value(std::move(doc)).write(out, 2);
        out << "\n";
    }
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        warn("result cache: rename to ", final_path, " failed: ",
             ec.message());
        fs::remove(tmp_path, ec);
    }
}

} // namespace dynaspam::runner
