/**
 * @file
 * On-disk cache of serialized warmed snapshots keyed by fork group.
 *
 * Forked sweeps warm one representative simulation per fork group and
 * fork every member from the warmed state (runner/runner.cc). The warm
 * pass dominates sweep cost, and without this cache it dies with the
 * process: every `dynaspam sweep` restart, every cluster worker, pays
 * it again. The SnapshotCache persists the serialized snapshot body
 * (sim/snapshot_io.hh) so a warmed prefix survives restarts and repeat
 * sweeps resume from disk.
 *
 * One file per fork group under the cache directory:
 *
 *     <dir>/<fnv1a-hex-of-group-key>.snap
 *
 * framed as: magic "DSNP" | u32 format version | epoch string |
 * group-key string | u64 SimInput identity hash | u64 body checksum |
 * length-prefixed body. Loads validate every frame field — magic,
 * version (kSnapshotFormatVersion), epoch (kResultCacheEpoch: snapshot
 * bytes encode simulator behaviour, so the two caches roll together),
 * the full group key (collisions degrade to misses), the input identity
 * hash (never bind state to the wrong input) and an FNV-1a body
 * checksum — and any mismatch is a miss: the caller re-warms, counts a
 * reject, and overwrites the entry. Never UB, never silent divergence.
 *
 * Writes are atomic (unique temp + rename, interrupt-cleanup
 * registered) and gc() shares ResultCache's rules: stale-frame entries
 * and orphaned temp litter older than the grace window are reaped, then
 * an LRU size budget (`--snapshot-cache-max-mb`) is applied by mtime.
 */

#ifndef DYNASPAM_RUNNER_SNAPSHOT_CACHE_HH
#define DYNASPAM_RUNNER_SNAPSHOT_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "runner/result_cache.hh"

namespace dynaspam::runner
{

/** File-per-fork-group store of serialized snapshot bodies. */
class SnapshotCache
{
  public:
    /**
     * @param dir cache directory (created on first store); an empty
     *            string disables the cache entirely
     * @param epoch behaviour version tag; defaults to kResultCacheEpoch
     */
    explicit SnapshotCache(std::string dir,
                           std::string epoch = kResultCacheEpoch);

    bool enabled() const { return !dir.empty(); }
    const std::string &directory() const { return dir; }

    /** @return the cache file path for @p group_key (even disabled). */
    std::string pathFor(const std::string &group_key) const;

    /**
     * Look up the snapshot body for @p group_key captured over an input
     * with identity @p input_hash. @return the body bytes, or nullopt
     * on any kind of miss — absent, unreadable, bad magic, version or
     * epoch mismatch, key or input-hash mismatch, checksum failure.
     * Refreshes the entry's mtime on a hit (LRU). Never throws.
     *
     * When @p rejected is non-null it is set to true only if a file
     * existed but failed frame validation — letting callers count
     * version-rollover rejects separately from plain cold misses.
     */
    std::optional<std::string> load(const std::string &group_key,
                                    std::uint64_t input_hash,
                                    bool *rejected = nullptr) const;

    /**
     * Store @p body for @p group_key atomically (temp file + rename).
     * Failures warn() and are otherwise ignored — the cache is an
     * optimization, not a correctness dependency.
     */
    void store(const std::string &group_key, std::uint64_t input_hash,
               const std::string &body) const;

    /**
     * Garbage-collect: remove temp litter older than the grace window
     * and entries whose frame fails validation (wrong magic/version/
     * epoch), then apply an LRU size budget like ResultCache::gc.
     */
    CacheGcStats gc(std::uint64_t max_bytes = 0) const;

  private:
    std::string dir;
    std::string epoch;
};

} // namespace dynaspam::runner

#endif // DYNASPAM_RUNNER_SNAPSHOT_CACHE_HH
