/**
 * @file
 * The experiment runner: jobs in, deterministic results out.
 *
 * Runner ties the pieces together: each job is first probed against the
 * ResultCache; misses are simulated on the work-stealing ThreadPool;
 * results land in a slot owned by the job's index, so the returned
 * vector is identical for any worker count. Cache bookkeeping is
 * exposed through a StatRegistry ("runner.cache_hits",
 * "runner.cache_misses", "runner.jobs_executed", "runner.jobs_total"),
 * which tests and the CLI use to prove that a warm-cache rerun performs
 * zero simulations.
 */

#ifndef DYNASPAM_RUNNER_RUNNER_HH
#define DYNASPAM_RUNNER_RUNNER_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "runner/job.hh"
#include "runner/report.hh"
#include "runner/result_cache.hh"
#include "runner/thread_pool.hh"

namespace dynaspam::runner
{

/** Execution knobs for a Runner. */
struct RunnerOptions
{
    /** Worker threads; 0 means ThreadPool::defaultWorkers(). */
    unsigned jobs = 0;
    /** Result-cache directory; empty disables caching. */
    std::string cacheDir;
    /**
     * Fork warmed snapshots across jobs that share a warmup-invariant
     * prefix (only jobs with warmupInsts > 0 are eligible). Results are
     * byte-identical either way; disabling is a debugging aid
     * (`--no-fork`).
     */
    bool forkSweeps = true;
};

/** Executes batches of jobs with caching and parallelism. */
class Runner
{
  public:
    explicit Runner(RunnerOptions options);

    /**
     * Run every job in @p jobs, returning outcomes in job order.
     * Deterministic: the outcome vector depends only on the job list
     * (and cache contents), never on the worker count.
     * @throws whatever a failing job throws (e.g. FatalError for an
     *         unknown workload), after the batch drains
     */
    std::vector<JobOutcome> runAll(const std::vector<Job> &jobs);

    /** Cache/EXECUTION bookkeeping, cumulative across runAll calls. */
    const StatRegistry &stats() const { return registry; }

    unsigned workers() const { return pool.workers(); }
    const ResultCache &cache() const { return resultCache; }

  private:
    RunnerOptions options;
    ThreadPool pool;
    ResultCache resultCache;
    StatRegistry registry;
};

} // namespace dynaspam::runner

#endif // DYNASPAM_RUNNER_RUNNER_HH
