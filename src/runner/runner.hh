/**
 * @file
 * The experiment runner: jobs in, deterministic results out.
 *
 * Runner ties the pieces together: each job is first probed against the
 * ResultCache; misses are simulated on the work-stealing ThreadPool;
 * results land in a slot owned by the job's index, so the returned
 * vector is identical for any worker count. Cache bookkeeping is
 * exposed through a StatRegistry ("runner.cache_hits",
 * "runner.cache_misses", "runner.jobs_executed", "runner.jobs_total"),
 * which tests and the CLI use to prove that a warm-cache rerun performs
 * zero simulations.
 */

#ifndef DYNASPAM_RUNNER_RUNNER_HH
#define DYNASPAM_RUNNER_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "runner/job.hh"
#include "runner/report.hh"
#include "runner/result_cache.hh"
#include "runner/snapshot_cache.hh"
#include "runner/thread_pool.hh"

namespace dynaspam::runner
{

/** Execution knobs for a Runner. */
struct RunnerOptions
{
    /** Worker threads; 0 means ThreadPool::defaultWorkers(). */
    unsigned jobs = 0;
    /** Result-cache directory; empty disables caching. */
    std::string cacheDir;
    /**
     * Fork warmed snapshots across jobs that share a warmup-invariant
     * prefix (only jobs with warmupInsts > 0 are eligible). Results are
     * byte-identical either way; disabling is a debugging aid
     * (`--no-fork`).
     */
    bool forkSweeps = true;
    /**
     * Snapshot-cache directory: warmed fork-group snapshots are
     * serialized here so repeat sweeps (and process restarts) skip the
     * warm pass entirely. Empty disables on-disk snapshots.
     */
    std::string snapshotCacheDir;
    /** LRU size budget for the snapshot cache (0 = unbounded). */
    std::uint64_t snapshotCacheMaxBytes = 0;
};

/**
 * Cumulative fork-group execution counters. `warmups` counts warm
 * passes actually simulated — a sweep fully served from the snapshot
 * cache performs zero, which is what the CI ship-smoke asserts.
 */
struct ForkGroupStats
{
    std::atomic<std::uint64_t> warmups{0};
    std::atomic<std::uint64_t> snapshotHits{0};
    std::atomic<std::uint64_t> snapshotMisses{0};
    /** Entries present but unusable: version/epoch/key/input-hash or
     *  checksum mismatch, or an undeserializable body. */
    std::atomic<std::uint64_t> snapshotRejects{0};
};

/**
 * Execute one fork group: warm the shared prefix once under the
 * representative (front) configuration — loading the warmed state from
 * @p snap_cache when a valid entry exists, storing it after a fresh
 * warm — then fork every member from the snapshot. Byte-identical to
 * running each job straight through. Shared by Runner::runAll and the
 * cluster worker so both execute groups the exact same way.
 *
 * @param jobs the full job list the indices in @p group refer to
 * @param group member indices, front = representative
 * @param outcomes outcome slots, written at each member's index
 * @param cache result cache to store finished members into (nullptr or
 *              disabled = skip storing)
 * @param snap_cache snapshot cache (nullptr or disabled = warm inline)
 * @param stats fork-group counters (nullptr = not collected)
 */
void runForkGroup(const std::vector<Job> &jobs,
                  const std::vector<std::size_t> &group,
                  std::vector<JobOutcome> &outcomes,
                  const ResultCache *cache,
                  const SnapshotCache *snap_cache, ForkGroupStats *stats);

/** Executes batches of jobs with caching and parallelism. */
class Runner
{
  public:
    explicit Runner(RunnerOptions options);

    /**
     * Run every job in @p jobs, returning outcomes in job order.
     * Deterministic: the outcome vector depends only on the job list
     * (and cache contents), never on the worker count.
     * @throws whatever a failing job throws (e.g. FatalError for an
     *         unknown workload), after the batch drains
     */
    std::vector<JobOutcome> runAll(const std::vector<Job> &jobs);

    /** Cache/EXECUTION bookkeeping, cumulative across runAll calls. */
    const StatRegistry &stats() const { return registry; }

    unsigned workers() const { return pool.workers(); }
    const ResultCache &cache() const { return resultCache; }
    const SnapshotCache &snapshotCache() const { return snapCache; }
    const ForkGroupStats &forkStats() const { return groupStats; }

  private:
    RunnerOptions options;
    ThreadPool pool;
    ResultCache resultCache;
    SnapshotCache snapCache;
    ForkGroupStats groupStats;
    StatRegistry registry;
};

} // namespace dynaspam::runner

#endif // DYNASPAM_RUNNER_RUNNER_HH
