/**
 * @file
 * On-disk cache of simulation results keyed by job content hash.
 *
 * Every cycle-level simulation of a (workload, mode, trace length,
 * fabrics, scale) point is deterministic, so its result can be reused
 * for as long as the simulator's behaviour is unchanged. The cache
 * stores one JSON file per job under a cache directory:
 *
 *     <dir>/<job-hash-hex>.json
 *     { "epoch": "...", "key": "bfs|accel-spec|32|1|1|0|full", "result": {...} }
 *
 * The *epoch* string names the simulator behaviour version
 * (kResultCacheEpoch); bump it whenever a change to src/ alters
 * simulation results, and every previously cached entry becomes a miss.
 * The full job key is stored and verified on load, so a (vanishingly
 * unlikely) hash collision degrades to a miss, never a wrong result.
 *
 * Robustness: any unreadable, unparsable or schema-mismatched cache
 * file is treated as a miss — the job is simply re-simulated and the
 * entry rewritten. Writes go to a temp file first and are renamed into
 * place, so concurrent writers (pool workers, parallel processes)
 * never expose half-written entries; the temp path is additionally
 * registered with the interrupt cleanup registry so a SIGINT mid-write
 * unlinks it instead of stranding it.
 *
 * Growth control: a long-lived process (the serve daemon, repeated
 * sweeps) would otherwise grow the directory without bound as epochs
 * roll and parameter spaces widen. gc() garbage-collects entries from
 * stale epochs plus any orphaned temp files, then applies an LRU size
 * budget: load() refreshes an entry's mtime on every hit, and gc()
 * evicts least-recently-used entries until the directory fits.
 */

#ifndef DYNASPAM_RUNNER_RESULT_CACHE_HH
#define DYNASPAM_RUNNER_RESULT_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "runner/job.hh"
#include "sim/system.hh"

namespace dynaspam::runner
{

/**
 * Simulator behaviour version for cache invalidation. Bump on any
 * change that alters simulation results.
 */
inline constexpr const char *kResultCacheEpoch = "dynaspam-sim-6";

/**
 * Temp files younger than this are presumed to belong to a live writer
 * and are skipped by gc(); only older litter (crashed/killed writers)
 * is reaped. Shared by ResultCache and SnapshotCache.
 */
inline constexpr std::uint64_t kCacheTmpGraceSeconds = 60;

/** What one ResultCache::gc pass scanned and removed. */
struct CacheGcStats
{
    std::uint64_t scanned = 0;      ///< entry files examined
    std::uint64_t staleEvicted = 0; ///< wrong-epoch / unparsable entries
    std::uint64_t lruEvicted = 0;   ///< evicted to meet the size budget
    std::uint64_t tmpRemoved = 0;   ///< orphaned *.tmp.* writer litter
    std::uint64_t bytesBefore = 0;  ///< directory size before the pass
    std::uint64_t bytesAfter = 0;   ///< directory size after the pass
};

/** File-per-job result store. */
class ResultCache
{
  public:
    /**
     * @param dir cache directory (created on first store); an empty
     *            string disables the cache entirely
     * @param epoch behaviour version tag; defaults to kResultCacheEpoch
     */
    explicit ResultCache(std::string dir,
                         std::string epoch = kResultCacheEpoch);

    bool enabled() const { return !dir.empty(); }
    const std::string &directory() const { return dir; }

    /** @return the cache file path for @p job (even when disabled). */
    std::string pathFor(const Job &job) const;

    /**
     * Look up @p job. @return the cached result, or nullopt on any kind
     * of miss (absent, corrupt, wrong epoch, key mismatch, disabled).
     * Never throws for file-level problems.
     */
    std::optional<sim::RunResult> load(const Job &job) const;

    /**
     * Look up an entry by its hex hash (cache file stem) without
     * knowing the job — what GET /results/<hash> needs. Validates the
     * stored epoch and rebuilds the Job from the entry's "job" object.
     * @return nullopt on any kind of miss, like load().
     */
    std::optional<std::pair<Job, sim::RunResult>>
    loadByHash(const std::string &hash_hex) const;

    /**
     * Store @p result for @p job (atomically: temp file + rename).
     * Failures are reported with warn() and otherwise ignored — the
     * cache is an optimization, not a correctness dependency.
     */
    void store(const Job &job, const sim::RunResult &result) const;

    /**
     * Garbage-collect the cache directory: remove orphaned temp files
     * and entries whose epoch is not this cache's epoch (stale
     * simulator versions), then — when @p max_bytes is nonzero — evict
     * least-recently-used entries (by mtime; load() hits refresh it)
     * until the remaining entries total at most @p max_bytes.
     * Concurrent-writer safe: eviction losers are re-simulated misses,
     * never corruption. No-op when the cache is disabled.
     */
    CacheGcStats gc(std::uint64_t max_bytes = 0) const;

  private:
    std::string dir;
    std::string epoch;
};

} // namespace dynaspam::runner

#endif // DYNASPAM_RUNNER_RESULT_CACHE_HH
