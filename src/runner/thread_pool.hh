/**
 * @file
 * Work-stealing thread pool for experiment execution.
 *
 * A fixed set of worker threads each owns a deque of task indices.
 * Workers pop work from the front of their own deque and, when it runs
 * dry, steal from the back of a victim's deque — the classic split that
 * keeps owner and thieves on opposite ends. Simulation jobs are coarse
 * (milliseconds to seconds each), so each deque is guarded by a plain
 * mutex rather than a lock-free Chase-Lev structure; contention is
 * negligible at this granularity.
 *
 * Determinism: the pool schedules *indices* and the caller stores each
 * task's result into a slot owned by that index, so the combined result
 * vector is identical no matter how many workers run or in what order
 * tasks finish. Tasks must not share mutable state for this to hold.
 */

#ifndef DYNASPAM_RUNNER_THREAD_POOL_HH
#define DYNASPAM_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dynaspam::runner
{

/** Fixed-size pool executing indexed task batches with work stealing. */
class ThreadPool
{
  public:
    /**
     * Spawn @p workers persistent worker threads (clamped to >= 1).
     * Workers idle on a condition variable between batches.
     */
    explicit ThreadPool(unsigned workers);

    /** Join all workers. Must not be called while a batch is running. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workers() const { return unsigned(deques.size()); }

    /**
     * Execute fn(0) ... fn(n-1) across the workers and block until all
     * complete. Task indices are dealt round-robin to the worker deques
     * up front; idle workers steal from the back of busy workers'
     * deques. If any task throws, the first exception is rethrown here
     * after the batch drains (remaining tasks still run).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** @return a worker count from the DYNASPAM_JOBS environment
     *  variable, or @p fallback (hardware concurrency when 0). */
    static unsigned defaultWorkers(unsigned fallback = 0);

  private:
    struct WorkerDeque
    {
        std::mutex mutex;
        std::deque<std::size_t> tasks;
    };

    void workerLoop(std::size_t self);
    bool popOwn(std::size_t self, std::size_t &index);
    bool stealOther(std::size_t self, std::size_t &index);
    void runTask(std::size_t index);

    std::vector<std::unique_ptr<WorkerDeque>> deques;
    std::vector<std::thread> threads;

    // Batch state, guarded by batchMutex.
    std::mutex batchMutex;
    std::condition_variable workAvailable;
    std::condition_variable batchDone;
    const std::function<void(std::size_t)> *batchFn = nullptr;
    std::size_t remaining = 0;      ///< tasks not yet finished
    std::uint64_t generation = 0;   ///< bumped per batch to wake workers
    bool shutdown = false;
    std::exception_ptr firstError;
};

} // namespace dynaspam::runner

#endif // DYNASPAM_RUNNER_THREAD_POOL_HH
