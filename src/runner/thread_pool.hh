/**
 * @file
 * Work-stealing thread pool for experiment execution.
 *
 * A fixed set of worker threads each owns a deque of queued tasks.
 * Workers pop work from the front of their own deque and, when it runs
 * dry, steal from the back of a victim's deque — the classic split that
 * keeps owner and thieves on opposite ends. Simulation jobs are coarse
 * (milliseconds to seconds each), so each deque is guarded by a plain
 * mutex rather than a lock-free Chase-Lev structure; contention is
 * negligible at this granularity.
 *
 * Two front ends share the same workers:
 *
 *  - parallelFor(n, fn): batch mode. Blocks until fn(0)..fn(n-1) have
 *    all run; the first task exception is rethrown after the batch
 *    drains. This is what the Runner's sweep path uses.
 *  - submit(task): persistent-queue mode. Enqueues one fire-and-forget
 *    closure and returns immediately; completion and error tracking are
 *    the caller's responsibility. This is what long-lived services
 *    (serve::Server) use to feed admitted jobs to the same pool.
 *
 * Determinism: parallelFor schedules *index-carrying closures* and the
 * caller stores each task's result into a slot owned by that index, so
 * the combined result vector is identical no matter how many workers
 * run or in what order tasks finish. Tasks must not share mutable state
 * for this to hold.
 *
 * Shutdown drains: the destructor runs every already-queued task before
 * joining, so a service can rely on "everything admitted eventually
 * executes" simply by destroying the pool.
 */

#ifndef DYNASPAM_RUNNER_THREAD_POOL_HH
#define DYNASPAM_RUNNER_THREAD_POOL_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "common/mutex.hh"

namespace dynaspam::runner
{

/** Fixed-size pool executing queued tasks with work stealing. */
class ThreadPool
{
  public:
    /**
     * Spawn @p workers persistent worker threads (clamped to >= 1).
     * Workers idle on a condition variable while the queues are empty.
     */
    explicit ThreadPool(unsigned workers);

    /**
     * Drain every queued task, then join all workers. Tasks submitted
     * concurrently with destruction may or may not run; callers that
     * need a clean cut must stop submitting first.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workers() const { return unsigned(deques.size()); }

    /**
     * Enqueue @p task (round-robin across the worker deques) and return
     * immediately. The task runs exactly once, on some worker thread.
     * Exceptions thrown by the task are a logic error: the worker has
     * nowhere to report them, so they terminate the process — wrap
     * fallible work in its own try/catch.
     */
    void submit(std::function<void()> task);

    /**
     * Execute fn(0) ... fn(n-1) across the workers and block until all
     * complete. Task indices are dealt round-robin to the worker deques
     * up front; idle workers steal from the back of busy workers'
     * deques. If any task throws, the first exception is rethrown here
     * after the batch drains (remaining tasks still run). Safe to call
     * from several threads at once (batches interleave); must not be
     * called from inside a pool task (the nested batch would wait for
     * workers that are all busy).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** @return tasks enqueued but not yet claimed by a worker — a
     *  queue-depth signal for services reporting backlog gauges. */
    std::size_t queuedTasks() const;

    /** @return a worker count from the DYNASPAM_JOBS environment
     *  variable, or @p fallback (hardware concurrency when 0). */
    static unsigned defaultWorkers(unsigned fallback = 0);

  private:
    struct WorkerDeque
    {
        common::Mutex mutex;
        std::deque<std::function<void()>> tasks GUARDED_BY(mutex);
    };

    void workerLoop(std::size_t self);
    bool popOwn(std::size_t self, std::function<void()> &task);
    bool stealOther(std::size_t self, std::function<void()> &task);

    std::vector<std::unique_ptr<WorkerDeque>> deques;
    std::vector<std::thread> threads;

    // Pool-wide state, guarded by poolMutex. `pending` counts enqueued
    // but not-yet-claimed tasks; it is incremented before the push so it
    // can never observably undercount, which makes it a safe sleep
    // predicate for the workers.
    mutable common::Mutex poolMutex;
    common::CondVar workAvailable;
    std::size_t pending GUARDED_BY(poolMutex) = 0;
    std::size_t nextDeque GUARDED_BY(poolMutex) = 0;
    bool shutdown GUARDED_BY(poolMutex) = false;
};

} // namespace dynaspam::runner

#endif // DYNASPAM_RUNNER_THREAD_POOL_HH
