/**
 * @file
 * JSON serialization of experiment results and sweep reports.
 *
 * Two layers:
 *  - resultToJson / resultFromJson round-trip a complete sim::RunResult
 *    (cycle count, pipeline/DynaSpAM stats, energy breakdown, stat
 *    registry, instruction split) — this is the on-disk format of the
 *    ResultCache.
 *  - writeSweepReport emits the documented sweep schema: a top-level
 *    object with schema_version, sweep metadata, runner stats, and one
 *    entry per job. See EXPERIMENTS.md ("Sweep JSON schema").
 *
 * Everything here is deterministic: keys are sorted, doubles use
 * shortest-round-trip formatting, and no timestamps are emitted, so the
 * same jobs produce byte-identical reports regardless of thread count.
 */

#ifndef DYNASPAM_RUNNER_REPORT_HH
#define DYNASPAM_RUNNER_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "runner/job.hh"
#include "sim/system.hh"

namespace dynaspam::runner
{

/** The result of one executed (or cache-served) job. */
struct JobOutcome
{
    Job job;
    sim::RunResult result;
    bool fromCache = false;
};

/** Serialize a full RunResult (cache round-trip format, version 1). */
json::Value resultToJson(const sim::RunResult &result);

/**
 * Rebuild a RunResult from resultToJson output.
 * @throws FatalError on schema mismatch
 */
sim::RunResult resultFromJson(const json::Value &value);

/** Serialize a job spec (workload, mode, parameters, hash). */
json::Value jobToJson(const Job &job);

/** Parse a job spec serialized by jobToJson. @throws FatalError */
Job jobFromJson(const json::Value &value);

/**
 * One sweep-report results[] entry:
 * {"job": ..., "from_cache": ..., "result": ...}. Exposed so a cluster
 * worker can serialize its shard's entries and the coordinator can
 * splice them into a combined report that is byte-identical to a
 * single-process one.
 */
json::Value sweepEntryJson(const JobOutcome &outcome);

/**
 * Assemble the sweep-report root document from already-serialized
 * results[] entries (in job order). Dumping this value with indent 2
 * plus a trailing newline reproduces writeSweepReport's bytes exactly.
 * @param runner_stats may be null (the "runner" key is then omitted)
 */
json::Value sweepReportJson(const std::string &name,
                            std::vector<json::Value> entries,
                            const StatRegistry *runner_stats = nullptr);

/**
 * The per-request stat registry a Runner would have produced for a
 * batch of @p total jobs of which @p hits came from the cache — used by
 * the serve daemon and the cluster coordinator so their report bytes
 * match the CLI's for the same cache state.
 */
StatRegistry sweepRequestStats(std::size_t total, std::size_t hits);

/**
 * Write a sweep report: one JSON document covering all @p outcomes.
 * @param name sweep name recorded in the report (e.g. "fig8")
 * @param runner_stats the runner's stat registry (cache hits etc.);
 *        may be null for reports produced without a Runner
 */
void writeSweepReport(std::ostream &os, const std::string &name,
                      const std::vector<JobOutcome> &outcomes,
                      const StatRegistry *runner_stats = nullptr);

/** Current sweep report schema version. */
inline constexpr unsigned kSweepSchemaVersion = 1;

} // namespace dynaspam::runner

#endif // DYNASPAM_RUNNER_REPORT_HH
