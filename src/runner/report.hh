/**
 * @file
 * JSON serialization of experiment results and sweep reports.
 *
 * Two layers:
 *  - resultToJson / resultFromJson round-trip a complete sim::RunResult
 *    (cycle count, pipeline/DynaSpAM stats, energy breakdown, stat
 *    registry, instruction split) — this is the on-disk format of the
 *    ResultCache.
 *  - writeSweepReport emits the documented sweep schema: a top-level
 *    object with schema_version, sweep metadata, runner stats, and one
 *    entry per job. See EXPERIMENTS.md ("Sweep JSON schema").
 *
 * Everything here is deterministic: keys are sorted, doubles use
 * shortest-round-trip formatting, and no timestamps are emitted, so the
 * same jobs produce byte-identical reports regardless of thread count.
 */

#ifndef DYNASPAM_RUNNER_REPORT_HH
#define DYNASPAM_RUNNER_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "runner/job.hh"
#include "sim/system.hh"

namespace dynaspam::runner
{

/** The result of one executed (or cache-served) job. */
struct JobOutcome
{
    Job job;
    sim::RunResult result;
    bool fromCache = false;
};

/** Serialize a full RunResult (cache round-trip format, version 1). */
json::Value resultToJson(const sim::RunResult &result);

/**
 * Rebuild a RunResult from resultToJson output.
 * @throws FatalError on schema mismatch
 */
sim::RunResult resultFromJson(const json::Value &value);

/** Serialize a job spec (workload, mode, parameters, hash). */
json::Value jobToJson(const Job &job);

/** Parse a job spec serialized by jobToJson. @throws FatalError */
Job jobFromJson(const json::Value &value);

/**
 * Write a sweep report: one JSON document covering all @p outcomes.
 * @param name sweep name recorded in the report (e.g. "fig8")
 * @param runner_stats the runner's stat registry (cache hits etc.);
 *        may be null for reports produced without a Runner
 */
void writeSweepReport(std::ostream &os, const std::string &name,
                      const std::vector<JobOutcome> &outcomes,
                      const StatRegistry *runner_stats = nullptr);

/** Current sweep report schema version. */
inline constexpr unsigned kSweepSchemaVersion = 1;

} // namespace dynaspam::runner

#endif // DYNASPAM_RUNNER_REPORT_HH
