/**
 * @file
 * Chrome trace-event JSON renderer (Perfetto / chrome://tracing).
 *
 * Layout: pid 0 is the host pipeline — each instruction is a complete
 * ("X") span from fetch to retire, spread round-robin over a few tid
 * lanes so overlapping lifetimes stay readable. pid 1 is the DynaSpAM
 * control plane: mapping/reconfiguration/invocation spans, instant
 * marks for T-Cache hits, config-cache fills/evicts and invocation
 * commits/squashes, and a counter track for fabric FIFO occupancy.
 *
 * Timestamps are simulated cycles, written directly into ts/dur. The
 * output is streamed (no json::Value tree — a long run buffers millions
 * of instruction events) but remains strict JSON: the round-trip test
 * parses it back through json::Value::parse.
 */

#include <ostream>

#include "common/json.hh"
#include "trace/trace.hh"

namespace dynaspam::trace
{

namespace
{

/** Host-pipeline tid lanes (purely presentational). */
constexpr std::uint64_t kHostLanes = 16;

void
writeMeta(std::ostream &os, unsigned pid, const char *name)
{
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":";
    json::writeEscaped(os, name);
    os << "}}";
}

/** Span duration: Chrome renders dur 0 invisibly, so clamp to 1. */
std::uint64_t
durOf(Cycle begin, Cycle end)
{
    return end > begin ? std::uint64_t(end - begin) : 1;
}

void
writeInst(std::ostream &os, const InstEvent &ev, std::size_t index)
{
    const Cycle begin = ev.fetch == CYCLE_INVALID ? ev.retire : ev.fetch;
    os << "{\"name\":";
    json::writeEscaped(os, ev.op);
    os << ",\"ph\":\"X\",\"pid\":0,\"tid\":" << 1 + (index % kHostLanes)
       << ",\"ts\":" << begin << ",\"dur\":" << durOf(begin, ev.retire)
       << ",\"args\":{\"trace_idx\":" << ev.traceIdx << ",\"pc\":" << ev.pc;
    if (ev.fetch != CYCLE_INVALID)
        os << ",\"fetch\":" << ev.fetch;
    if (ev.dispatch != CYCLE_INVALID)
        os << ",\"dispatch\":" << ev.dispatch;
    if (ev.issue != CYCLE_INVALID)
        os << ",\"issue\":" << ev.issue;
    if (ev.complete != CYCLE_INVALID)
        os << ",\"complete\":" << ev.complete;
    os << ",\"retire\":" << ev.retire;
    if (ev.traceLen > 1)
        os << ",\"trace_len\":" << ev.traceLen;
    os << ",\"domain\":\"" << (ev.fabric ? "fabric" : "host") << "\""
       << ",\"flushed\":" << (ev.flushed ? "true" : "false")
       << ",\"mispredicted\":" << (ev.mispredicted ? "true" : "false")
       << "}}";
}

/** Control-plane tid per mark kind (groups related spans on one row). */
unsigned
markLane(Mark kind)
{
    switch (kind) {
      case Mark::TCacheHit:
        return 1;
      case Mark::Mapping:
      case Mark::MappingAbort:
        return 2;
      case Mark::ConfigFill:
      case Mark::ConfigEvict:
        return 3;
      case Mark::Reconfigure:
        return 4;
      case Mark::Invocation:
      case Mark::InvokeCommit:
      case Mark::InvokeSquash:
        return 5;
      case Mark::FifoLevel:
        return 0;
    }
    return 0;
}

void
writeMark(std::ostream &os, const MarkEvent &ev)
{
    if (ev.kind == Mark::FifoLevel) {
        os << "{\"name\":\"" << markName(ev.kind)
           << "\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" << ev.begin
           << ",\"args\":{\"occupancy\":" << ev.value << "}}";
        return;
    }

    const bool instant = ev.end == ev.begin;
    os << "{\"name\":\"" << markName(ev.kind) << "\",\"ph\":\""
       << (instant ? "i" : "X") << "\",\"pid\":1,\"tid\":"
       << markLane(ev.kind) << ",\"ts\":" << ev.begin;
    if (instant)
        os << ",\"s\":\"t\"";
    else
        os << ",\"dur\":" << durOf(ev.begin, ev.end);
    os << ",\"args\":{";
    bool first = true;
    auto field = [&](const char *name, std::uint64_t value) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << name << "\":" << value;
    };
    if (ev.key)
        field("key", ev.key);
    field("trace_idx", ev.traceIdx);
    if (ev.kind == Mark::InvokeSquash)
        field("at_fault", ev.value);
    else if (ev.value)
        field("value", ev.value);
    os << "}}";
}

} // namespace

void
TraceSink::writeChromeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    writeMeta(os, 0, "host pipeline");
    os << ',';
    writeMeta(os, 1, "dynaspam control");

    for (std::size_t i = 0; i < insts.size(); i++) {
        os << ",\n";
        writeInst(os, insts[i], i);
    }
    for (const MarkEvent &ev : marks) {
        os << ",\n";
        writeMark(os, ev);
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

} // namespace dynaspam::trace
