/**
 * @file
 * Trace sink implementation: env knobs, event buffering, file output.
 */

#include "trace/trace.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/logging.hh"

namespace dynaspam::trace
{

bool
envRequested()
{
    // Deliberately not cached in a static (unlike check::enabled()):
    // tracing decisions happen once per job, not per cycle, and tests
    // toggle the variable between runs.
    const char *value = std::getenv("DYNASPAM_TRACE");
    if (!value || !*value)
        return false;
    return std::strcmp(value, "0") && std::strcmp(value, "off") &&
           std::strcmp(value, "false");
}

std::string
envTraceDir()
{
    const char *value = std::getenv("DYNASPAM_TRACE_DIR");
    return (value && *value) ? value : ".";
}

const char *
markName(Mark kind)
{
    switch (kind) {
      case Mark::TCacheHit:
        return "tcache-hit";
      case Mark::Mapping:
        return "mapping";
      case Mark::MappingAbort:
        return "mapping-abort";
      case Mark::ConfigFill:
        return "config-fill";
      case Mark::ConfigEvict:
        return "config-evict";
      case Mark::Reconfigure:
        return "reconfigure";
      case Mark::Invocation:
        return "invocation";
      case Mark::InvokeCommit:
        return "invoke-commit";
      case Mark::InvokeSquash:
        return "invoke-squash";
      case Mark::FifoLevel:
        return "fabric.inflight";
    }
    return "unknown";
}

void
TraceSink::instRetired(const InstEvent &ev)
{
    const Cycle begin = ev.fetch == CYCLE_INVALID ? ev.retire : ev.fetch;
    if (!inWindow(begin, ev.retire))
        return;
    insts.push_back(ev);
}

void
TraceSink::instFlushed(InstEvent ev)
{
    ev.flushed = true;
    const Cycle begin = ev.fetch == CYCLE_INVALID ? ev.retire : ev.fetch;
    if (!inWindow(begin, ev.retire))
        return;
    insts.push_back(ev);
}

void
TraceSink::span(Mark kind, Cycle begin, Cycle end, std::uint64_t key,
                SeqNum trace_idx, std::uint64_t value)
{
    if (!inWindow(begin, end))
        return;
    marks.push_back({kind, begin, end, key, trace_idx, value});
}

void
TraceSink::writeFiles(const std::string &chrome_path) const
{
    {
        std::ofstream os(chrome_path);
        if (!os)
            fatal("trace: cannot write ", chrome_path);
        writeChromeJson(os);
    }
    const std::string konata_path = chrome_path + ".kanata";
    std::ofstream os(konata_path);
    if (!os)
        fatal("trace: cannot write ", konata_path);
    writeKonata(os);
}

} // namespace dynaspam::trace
