/**
 * @file
 * Konata pipeline-log renderer (Kanata format 0004, as consumed by
 * https://github.com/shioyadan/Konata).
 *
 * Kanata is a cycle-ordered streaming format: every line belongs to the
 * "current cycle", advanced by C directives. The sink buffers events in
 * retirement order, so rendering first explodes each instruction into
 * per-stage sub-events, sorts them by (cycle, instruction, stage), and
 * then emits with running cycle deltas. Stage lanes used:
 *
 *   F  fetch .. dispatch        Ds dispatch .. issue
 *   Is issue .. complete        Cm complete .. retire
 *   Inv dispatch .. complete    (fabric invocations, which never issue
 *                                through the host IQ)
 *
 * Squashed instructions retire with type 1 (flush) R lines, committed
 * ones with type 0.
 */

#include <algorithm>
#include <ostream>
#include <vector>

#include "trace/trace.hh"

namespace dynaspam::trace
{

namespace
{

/** One Kanata line waiting for cycle-ordered emission. */
struct SubEvent
{
    Cycle cycle = 0;
    std::uint64_t id = 0;       ///< instruction id within the log
    std::uint8_t ord = 0;       ///< intra-(cycle, id) emission order
    enum class Kind : std::uint8_t
    {
        Begin,      ///< I + L lines
        StageEnd,   ///< E line
        StageStart, ///< S line
        Retire,     ///< R line
    } kind = Kind::Begin;
    const char *stage = "";
    const InstEvent *inst = nullptr;
};

/** Valid pipeline timestamps of @p ev as (stage name, cycle) pairs,
 *  clamped monotonic so Kanata never sees a stage end before it began. */
std::vector<std::pair<const char *, Cycle>>
stagesOf(const InstEvent &ev)
{
    std::vector<std::pair<const char *, Cycle>> stages;
    Cycle prev = 0;
    auto add = [&](const char *name, Cycle c) {
        if (c == CYCLE_INVALID)
            return;
        stages.emplace_back(name, std::max(c, prev));
        prev = stages.back().second;
    };
    add("F", ev.fetch);
    if (ev.fabric && ev.traceLen > 1) {
        add("Inv", ev.dispatch);
    } else {
        add("Ds", ev.dispatch);
        add("Is", ev.issue);
        add("Cm", ev.complete);
    }
    if (stages.empty())
        stages.emplace_back("F", ev.retire);
    return stages;
}

} // namespace

void
TraceSink::writeKonata(std::ostream &os) const
{
    std::vector<SubEvent> events;
    events.reserve(insts.size() * 6);

    for (std::size_t i = 0; i < insts.size(); i++) {
        const InstEvent &ev = insts[i];
        const auto stages = stagesOf(ev);
        const Cycle retire =
            std::max(ev.retire, stages.back().second);

        std::uint8_t ord = 0;
        events.push_back({stages.front().second, i, ord++,
                          SubEvent::Kind::Begin, "", &ev});
        events.push_back({stages.front().second, i, ord++,
                          SubEvent::Kind::StageStart, stages.front().first,
                          &ev});
        for (std::size_t s = 1; s < stages.size(); s++) {
            events.push_back({stages[s].second, i, ord++,
                              SubEvent::Kind::StageEnd,
                              stages[s - 1].first, &ev});
            events.push_back({stages[s].second, i, ord++,
                              SubEvent::Kind::StageStart, stages[s].first,
                              &ev});
        }
        events.push_back({retire, i, ord++, SubEvent::Kind::StageEnd,
                          stages.back().first, &ev});
        events.push_back({retire, i, ord++, SubEvent::Kind::Retire, "",
                          &ev});
    }

    std::sort(events.begin(), events.end(),
              [](const SubEvent &a, const SubEvent &b) {
                  if (a.cycle != b.cycle)
                      return a.cycle < b.cycle;
                  if (a.id != b.id)
                      return a.id < b.id;
                  return a.ord < b.ord;
              });

    os << "Kanata\t0004\n";
    if (events.empty())
        return;

    Cycle current = events.front().cycle;
    os << "C=\t" << current << "\n";
    std::uint64_t retired = 0;

    for (const SubEvent &se : events) {
        if (se.cycle > current) {
            os << "C\t" << (se.cycle - current) << "\n";
            current = se.cycle;
        }
        switch (se.kind) {
          case SubEvent::Kind::Begin:
            os << "I\t" << se.id << "\t" << se.inst->traceIdx << "\t0\n";
            os << "L\t" << se.id << "\t0\t" << "pc=" << se.inst->pc
               << " " << se.inst->op;
            if (se.inst->traceLen > 1)
                os << " x" << se.inst->traceLen;
            if (se.inst->fabric)
                os << " [fabric]";
            if (se.inst->mispredicted)
                os << " [mispred]";
            os << "\n";
            break;
          case SubEvent::Kind::StageStart:
            os << "S\t" << se.id << "\t0\t" << se.stage << "\n";
            break;
          case SubEvent::Kind::StageEnd:
            os << "E\t" << se.id << "\t0\t" << se.stage << "\n";
            break;
          case SubEvent::Kind::Retire:
            os << "R\t" << se.id << "\t" << retired++ << "\t"
               << (se.inst->flushed ? 1 : 0) << "\n";
            break;
        }
    }
}

} // namespace dynaspam::trace
