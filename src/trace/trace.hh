/**
 * @file
 * Pipeline/fabric event-tracing layer.
 *
 * A TraceSink buffers two kinds of events while a simulation runs:
 *
 *  - per-instruction pipeline records (one InstEvent per committed or
 *    squashed ROB entry, carrying every stage timestamp the DynInst
 *    already accumulated), and
 *  - per-trace lifecycle marks (T-Cache hits, mapping phases,
 *    configuration-cache fills/evictions, fabric reconfigurations,
 *    invocation spans, in-flight FIFO occupancy).
 *
 * On finish the buffer is rendered as (a) Chrome trace-event JSON,
 * loadable in Perfetto / chrome://tracing, and (b) a Konata-compatible
 * pipeline log (Kanata format 0004).
 *
 * Cost model, following the DYNASPAM_CHECK pattern from src/check:
 * every hook site is written `if (trace::compiledIn() && sink) ...`.
 * With -DDYNASPAM_TRACE=OFF the sites fold to dead code; in the default
 * build (tracing compiled in) an unattached sink costs one predictable
 * null-pointer branch per *retired* instruction — events are recorded at
 * commit/squash from timestamps the pipeline tracks anyway, never per
 * stage per cycle, so attaching a sink cannot perturb timing. That
 * non-perturbation is enforced by tests: stat reports are byte-identical
 * with and without a sink attached.
 *
 * Runtime knobs (read per execute() call, not cached, so tests can
 * toggle them):
 *  - DYNASPAM_TRACE=1      trace every runner::execute() job
 *  - DYNASPAM_TRACE_DIR=D  directory for the emitted files (default ".")
 */

#ifndef DYNASPAM_TRACE_TRACE_HH
#define DYNASPAM_TRACE_TRACE_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dynaspam::trace
{

/** True when the build compiled trace hooks in (-DDYNASPAM_TRACE=ON,
 *  the default; OFF folds every hook site to dead code). */
constexpr bool
compiledIn()
{
#ifdef DYNASPAM_TRACE_BUILD
    return true;
#else
    return false;
#endif
}

/** @return true when the DYNASPAM_TRACE environment variable requests
 *  tracing of every runner job. Read per call (not cached) so tests
 *  can set and unset it. */
bool envRequested();

/** Directory for env-requested trace files (DYNASPAM_TRACE_DIR,
 *  default "."). */
std::string envTraceDir();

/** Lifecycle mark kinds (the DynaSpAM control plane). */
enum class Mark : std::uint8_t
{
    TCacheHit,      ///< fetch met a hot T-Cache trace (instant)
    Mapping,        ///< mapping phase that completed (span)
    MappingAbort,   ///< mapping phase that aborted (span)
    ConfigFill,     ///< configuration-cache insert (instant)
    ConfigEvict,    ///< configuration-cache eviction (instant)
    Reconfigure,    ///< fabric reconfiguration (span)
    Invocation,     ///< fabric invocation execute..complete (span)
    InvokeCommit,   ///< invocation committed at ROB head (instant)
    InvokeSquash,   ///< invocation squashed (instant; value = at fault)
    FifoLevel,      ///< fabric in-flight window occupancy (counter)
};

/** @return a short stable display name for @p kind. */
const char *markName(Mark kind);

/** One retired or squashed instruction with its stage timestamps. */
struct InstEvent
{
    SeqNum traceIdx = 0;        ///< oracle record index
    InstAddr pc = 0;
    const char *op = "";        ///< static opcode mnemonic
    Cycle fetch = CYCLE_INVALID;
    Cycle dispatch = CYCLE_INVALID;
    Cycle issue = CYCLE_INVALID;
    Cycle complete = CYCLE_INVALID;
    Cycle retire = CYCLE_INVALID;   ///< commit (or squash) cycle
    std::uint8_t fu = 0xff;     ///< isa::FuType, 0xff = none
    std::uint32_t traceLen = 1; ///< >1 for fabric invocations
    bool fabric = false;        ///< committed via a fabric invocation
    bool flushed = false;       ///< squashed, not committed
    bool mispredicted = false;
};

/** One lifecycle mark (instant when end == begin, span otherwise). */
struct MarkEvent
{
    Mark kind = Mark::TCacheHit;
    Cycle begin = 0;
    Cycle end = 0;
    std::uint64_t key = 0;      ///< trace key (0 = none)
    SeqNum traceIdx = 0;
    std::uint64_t value = 0;    ///< kind-specific payload
};

/**
 * Event buffer and renderer. One sink traces one simulation; attach it
 * through sim::SystemConfig::traceSink (or runner::execute's sink
 * overload) and render with writeChromeJson()/writeKonata() after the
 * run. Buffering order is the simulator's deterministic emission order,
 * so rendered files are byte-identical across runs and worker counts.
 */
class TraceSink
{
  public:
    /** Cycle-window filter: only events overlapping [begin, end]. */
    struct Options
    {
        Cycle beginCycle = 0;
        Cycle endCycle = std::numeric_limits<Cycle>::max();
    };

    TraceSink() = default;
    explicit TraceSink(const Options &o) : opts(o) {}

    /** Record a committed instruction (host or fabric invocation). */
    void instRetired(const InstEvent &ev);

    /** Record a squashed ROB entry (retire = squash cycle). */
    void instFlushed(InstEvent ev);

    /** Record an instant lifecycle mark. */
    void
    mark(Mark kind, Cycle now, std::uint64_t key = 0,
         SeqNum trace_idx = 0, std::uint64_t value = 0)
    {
        span(kind, now, now, key, trace_idx, value);
    }

    /** Record a lifecycle span [begin, end]. */
    void span(Mark kind, Cycle begin, Cycle end, std::uint64_t key = 0,
              SeqNum trace_idx = 0, std::uint64_t value = 0);

    /** Counter sample (rendered as a Chrome counter track). */
    void
    counter(Mark kind, Cycle now, std::uint64_t value)
    {
        span(kind, now, now, 0, 0, value);
    }

    std::size_t eventCount() const { return insts.size() + marks.size(); }
    std::size_t instCount() const { return insts.size(); }
    std::size_t markCount() const { return marks.size(); }

    /** Heap held by the event buffers (0 for an untouched sink — the
     *  "tracing disabled allocates nothing" assertion in tests). */
    std::size_t
    bufferedBytes() const
    {
        return insts.capacity() * sizeof(InstEvent) +
               marks.capacity() * sizeof(MarkEvent);
    }

    const std::vector<InstEvent> &instEvents() const { return insts; }
    const std::vector<MarkEvent> &markEvents() const { return marks; }
    const Options &options() const { return opts; }

    /** Render the buffer as Chrome trace-event JSON ({"traceEvents":
     *  [...]}, ts/dur in simulated cycles). Parseable by
     *  json::Value::parse and loadable in Perfetto. */
    void writeChromeJson(std::ostream &os) const;

    /** Render the buffer as a Konata pipeline log (Kanata 0004). */
    void writeKonata(std::ostream &os) const;

    /**
     * Write both renderings: @p chrome_path gets the Chrome JSON and
     * @p chrome_path with a ".kanata" suffix appended gets the Konata
     * log. @throws FatalError when a file cannot be opened.
     */
    void writeFiles(const std::string &chrome_path) const;

  private:
    bool
    inWindow(Cycle begin, Cycle end) const
    {
        return end >= opts.beginCycle && begin <= opts.endCycle;
    }

    Options opts;
    std::vector<InstEvent> insts;
    std::vector<MarkEvent> marks;
};

} // namespace dynaspam::trace

#endif // DYNASPAM_TRACE_TRACE_HH
