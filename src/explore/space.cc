#include "explore/space.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace dynaspam::explore
{
namespace
{

/** Bounds for the numeric axes (mirrors the /run request validator). */
constexpr unsigned kMaxTraceLength = 1024;
constexpr unsigned kMaxNumFabrics = 64;
constexpr unsigned kMaxScale = 64;
constexpr std::uint64_t kMaxWarmupInsts = 1'000'000'000;
constexpr unsigned kMaxGenerationSize = 256;
constexpr unsigned kMaxMinRegionScouts = 4096;
constexpr double kMaxMargin = 0.5;

/** Fetch `space.<key>` as an unsigned in [lo, hi]. */
std::uint64_t
specUint(const json::Value &value, const std::string &key,
         std::uint64_t fallback, std::uint64_t lo, std::uint64_t hi)
{
    const json::Value *field = value.find(key);
    if (!field)
        return fallback;
    std::uint64_t v = field->asUint();
    if (v < lo || v > hi)
        fatal("space: \"", key, "\" must be in [", lo, ", ", hi, "]");
    return v;
}

/** Fetch `space.<key>` as a double in [0, kMaxMargin]. */
double
specMargin(const json::Value &value, const std::string &key,
           double fallback)
{
    const json::Value *field = value.find(key);
    if (!field)
        return fallback;
    if (!field->isNumber())
        fatal("space: \"", key, "\" must be a number");
    double v = field->asDouble();
    if (!(v >= 0.0 && v <= kMaxMargin))
        fatal("space: \"", key, "\" must be in [0, ", kMaxMargin, "]");
    return v;
}

/** Parse an axis of unsigned values: non-empty, in range, unique. */
std::vector<unsigned>
specAxis(const json::Value &value, const std::string &key,
         std::vector<unsigned> fallback, unsigned lo, unsigned hi)
{
    const json::Value *field = value.find(key);
    if (!field)
        return fallback;
    const json::Array &arr = field->asArray();
    if (arr.empty())
        fatal("space: \"", key, "\" must not be empty");
    std::vector<unsigned> out;
    for (const json::Value &item : arr) {
        std::uint64_t v = item.asUint();
        if (v < lo || v > hi)
            fatal("space: \"", key, "\" values must be in [", lo, ", ",
                  hi, "]");
        out.push_back(unsigned(v));
    }
    std::vector<unsigned> sorted = out;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        fatal("space: \"", key, "\" values must be unique");
    return sorted;
}

} // namespace

const char *
objectiveName(ObjectiveKind kind)
{
    switch (kind) {
      case ObjectiveKind::Speedup: return "speedup";
      case ObjectiveKind::Cycles: return "cycles";
      case ObjectiveKind::Energy: return "energy";
      case ObjectiveKind::Edp: return "edp";
    }
    return "?";
}

bool
objectiveMaximize(ObjectiveKind kind)
{
    return kind == ObjectiveKind::Speedup;
}

ObjectiveKind
parseObjective(const std::string &token)
{
    for (ObjectiveKind kind :
         {ObjectiveKind::Speedup, ObjectiveKind::Cycles,
          ObjectiveKind::Energy, ObjectiveKind::Edp}) {
        if (token == objectiveName(kind))
            return kind;
    }
    fatal("space: unknown objective \"", token, "\"");
}

Space
Space::fromJson(const json::Value &value)
{
    if (!value.isObject())
        fatal("space: request body must be a JSON object");

    static const std::set<std::string> known = {
        "name",          "workloads",       "modes",
        "trace_lengths", "num_fabrics",     "scales",
        "objectives",    "seed",            "generation_size",
        "promote_margin", "prune_margin",   "min_region_scouts",
        "scout_fidelity", "warmup_insts",   "exhaustive",
    };
    for (const auto &[key, _] : value.asObject()) {
        if (!known.count(key))
            fatal("space: unknown field \"", key, "\"");
    }

    Space space;
    if (const json::Value *name = value.find("name")) {
        space.name = name->asString();
        if (space.name.empty())
            fatal("space: \"name\" must not be empty");
    }

    const json::Value *workloads = value.find("workloads");
    if (!workloads)
        fatal("space: missing required field \"workloads\"");
    for (const json::Value &item : workloads->asArray()) {
        const std::string &tag = item.asString();
        if (tag.empty())
            fatal("space: workload tags must not be empty");
        if (std::count(space.workloads.begin(), space.workloads.end(),
                       tag))
            fatal("space: duplicate workload \"", tag, "\"");
        space.workloads.push_back(tag);
    }
    if (space.workloads.empty())
        fatal("space: \"workloads\" must not be empty");

    if (const json::Value *modes = value.find("modes")) {
        for (const json::Value &item : modes->asArray()) {
            sim::SystemMode mode = runner::parseMode(item.asString());
            if (std::count(space.modes.begin(), space.modes.end(), mode))
                fatal("space: duplicate mode \"", item.asString(), "\"");
            space.modes.push_back(mode);
        }
        if (space.modes.empty())
            fatal("space: \"modes\" must not be empty");
    } else {
        space.modes = {sim::SystemMode::BaselineOoo,
                       sim::SystemMode::MappingOnly,
                       sim::SystemMode::AccelNoSpec,
                       sim::SystemMode::AccelSpec};
    }

    space.traceLengths =
        specAxis(value, "trace_lengths", {32}, 1, kMaxTraceLength);
    space.numFabrics =
        specAxis(value, "num_fabrics", {1}, 1, kMaxNumFabrics);
    space.scales = specAxis(value, "scales", {1}, 1, kMaxScale);

    if (const json::Value *objectives = value.find("objectives")) {
        for (const json::Value &item : objectives->asArray()) {
            ObjectiveKind kind = parseObjective(item.asString());
            if (std::count(space.objectives.begin(),
                           space.objectives.end(), kind))
                fatal("space: duplicate objective \"", item.asString(),
                      "\"");
            space.objectives.push_back(kind);
        }
    } else {
        space.objectives = {ObjectiveKind::Speedup, ObjectiveKind::Energy};
    }
    if (space.objectives.empty() ||
        space.objectives.size() > kMaxObjectives)
        fatal("space: between 1 and ", kMaxObjectives,
              " objectives required");

    if (const json::Value *seed = value.find("seed"))
        space.seed = seed->asUint();
    space.generationSize = unsigned(
        specUint(value, "generation_size", 8, 1, kMaxGenerationSize));
    space.promoteMargin = specMargin(value, "promote_margin", 0.02);
    space.pruneMargin = specMargin(value, "prune_margin", 0.10);
    space.minRegionScouts = unsigned(specUint(
        value, "min_region_scouts", 2, 1, kMaxMinRegionScouts));
    if (const json::Value *fidelity = value.find("scout_fidelity"))
        space.scoutFidelity = runner::parseFidelity(fidelity->asString());
    space.warmupInsts =
        specUint(value, "warmup_insts", 0, 0, kMaxWarmupInsts);
    if (const json::Value *exhaustive = value.find("exhaustive"))
        space.exhaustive = exhaustive->asBool();

    // The baseline mode carries no trace-detection or fabric hardware,
    // so its candidates collapse onto the first value of those axes; the
    // effective grid is what the size cap must bound.
    std::size_t perProblem = 0;
    for (sim::SystemMode mode : space.modes) {
        perProblem += mode == sim::SystemMode::BaselineOoo
                          ? 1
                          : space.traceLengths.size() *
                                space.numFabrics.size();
    }
    std::size_t grid =
        space.workloads.size() * space.scales.size() * perProblem;
    if (grid > kMaxGridCandidates)
        fatal("space: grid of ", grid, " candidates exceeds the cap of ",
              kMaxGridCandidates);

    return space;
}

json::Value
Space::toJson() const
{
    json::Object obj;
    obj.emplace("name", name);
    json::Array wls;
    for (const std::string &tag : workloads)
        wls.emplace_back(tag);
    obj.emplace("workloads", std::move(wls));
    json::Array modeArr;
    for (sim::SystemMode mode : modes)
        modeArr.emplace_back(std::string(sim::modeName(mode)));
    obj.emplace("modes", std::move(modeArr));
    auto axis = [](const std::vector<unsigned> &values) {
        json::Array arr;
        for (unsigned v : values)
            arr.emplace_back(std::uint64_t(v));
        return arr;
    };
    obj.emplace("trace_lengths", axis(traceLengths));
    obj.emplace("num_fabrics", axis(numFabrics));
    obj.emplace("scales", axis(scales));
    json::Array objArr;
    for (ObjectiveKind kind : objectives)
        objArr.emplace_back(std::string(objectiveName(kind)));
    obj.emplace("objectives", std::move(objArr));
    obj.emplace("seed", seed);
    obj.emplace("generation_size", std::uint64_t(generationSize));
    obj.emplace("promote_margin", promoteMargin);
    obj.emplace("prune_margin", pruneMargin);
    obj.emplace("min_region_scouts", std::uint64_t(minRegionScouts));
    obj.emplace("scout_fidelity",
                std::string(runner::fidelityName(scoutFidelity)));
    obj.emplace("warmup_insts", warmupInsts);
    obj.emplace("exhaustive", exhaustive);
    return json::Value(std::move(obj));
}

} // namespace dynaspam::explore
