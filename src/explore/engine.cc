#include "explore/engine.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/types.hh"

namespace dynaspam::explore
{
namespace
{

/**
 * True when @p a beats @p b by at least the relative @p margin in every
 * objective. With margin 0 this degenerates to weak componentwise
 * dominance (exact ties count as beaten), which is why the engine never
 * applies it to frontier members themselves.
 */
bool
relMarginDominates(const std::vector<double> &a,
                   const std::vector<double> &b,
                   const std::vector<bool> &maximize, double margin)
{
    for (std::size_t i = 0; i < a.size(); i++) {
        if (maximize[i]) {
            if (a[i] < b[i] * (1.0 + margin))
                return false;
        } else {
            if (a[i] > b[i] * (1.0 - margin))
                return false;
        }
    }
    return true;
}

/** Detailed-instruction fraction a result actually simulated. */
double
costFraction(const sim::RunResult &result)
{
    if (!result.sampled || result.instsTotal == 0)
        return 1.0;
    double frac =
        double(result.sampledInsts) / double(result.instsTotal);
    return std::min(frac, 1.0);
}

} // namespace

std::vector<std::size_t>
paretoFrontier(const std::vector<std::vector<double>> &points,
               const std::vector<bool> &maximize)
{
    auto dominates = [&](const std::vector<double> &a,
                         const std::vector<double> &b) {
        bool strict = false;
        for (std::size_t i = 0; i < a.size(); i++) {
            double ai = maximize[i] ? a[i] : -a[i];
            double bi = maximize[i] ? b[i] : -b[i];
            if (ai < bi)
                return false;
            if (ai > bi)
                strict = true;
        }
        return strict;
    };
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); i++) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; j++)
            dominated = j != i && dominates(points[j], points[i]);
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

Engine::Engine(Space space_) : space(std::move(space_))
{
    for (ObjectiveKind kind : space.objectives)
        maximize.push_back(objectiveMaximize(kind));
    const bool wantSpeedup =
        std::count(space.objectives.begin(), space.objectives.end(),
                   ObjectiveKind::Speedup) > 0;

    // Problems in (workload, scale) grid order; candidates per problem
    // in (mode, trace, fabrics) grid order. Both orders are what every
    // report and frontier listing uses, so they must not depend on
    // anything but the validated space.
    for (const std::string &workload : space.workloads) {
        for (unsigned scale : space.scales) {
            Problem problem;
            problem.workload = workload;
            problem.scale = scale;
            problem.baselineJob =
                runner::Job{workload, sim::SystemMode::BaselineOoo,
                            space.traceLengths.front(),
                            space.numFabrics.front(), scale,
                            space.warmupInsts, runner::Fidelity::Full};
            std::size_t problemIdx = problems.size();
            for (sim::SystemMode mode : space.modes) {
                // The baseline pipeline has no trace-detection or
                // fabric hardware: its point collapses onto the first
                // value of those axes (see Space::fromJson's grid cap).
                const bool baseline = mode == sim::SystemMode::BaselineOoo;
                for (unsigned trace : space.traceLengths) {
                    if (baseline && trace != space.traceLengths.front())
                        continue;
                    for (unsigned fabrics : space.numFabrics) {
                        if (baseline &&
                            fabrics != space.numFabrics.front())
                            continue;
                        Candidate cand;
                        cand.job = runner::Job{
                            workload, mode, trace, fabrics, scale,
                            space.warmupInsts, runner::Fidelity::Full};
                        cand.problem = problemIdx;
                        problem.members.push_back(candidates.size());
                        candidates.push_back(std::move(cand));
                    }
                }
            }
            problems.push_back(std::move(problem));
        }
    }

    // Seeded, wall-clock-free scouting order: FNV-1a over the seed's
    // little-endian bytes followed by the job key. Ties (never expected;
    // keys are unique) fall back to the key itself.
    unsigned char seedBytes[8];
    bits::storeLE64(space.seed, seedBytes);
    std::uint64_t seedHash = bits::FNV1A_OFFSET;
    for (unsigned char byte : seedBytes)
        seedHash = bits::fnv1aStep(seedHash, byte);
    for (std::size_t i = 0; i < candidates.size(); i++) {
        const std::string key = candidates[i].job.key();
        candidates[i].order =
            bits::fnv1a(key.data(), key.size(), seedHash);
        scoutOrder.push_back(i);
    }
    std::sort(scoutOrder.begin(), scoutOrder.end(),
              [&](std::size_t a, std::size_t b) {
                  if (candidates[a].order != candidates[b].order)
                      return candidates[a].order < candidates[b].order;
                  return candidates[a].job.key() < candidates[b].job.key();
              });

    // Exhaustive full-fidelity cost of the same question: every grid
    // candidate plus any baseline run that is not itself a candidate.
    gridCost = double(candidates.size());
    if (wantSpeedup) {
        std::set<std::string> keys;
        for (const Candidate &cand : candidates)
            keys.insert(cand.job.key());
        for (const Problem &problem : problems) {
            if (!keys.count(problem.baselineJob.key()))
                gridCost += 1.0;
        }
    }

    phase = wantSpeedup ? Phase::Baselines
                        : (space.exhaustive ? Phase::Promote : Phase::Scout);
}

std::string
Engine::label(const Problem &problem) const
{
    std::ostringstream os;
    os << problem.workload << "|" << problem.scale;
    return os.str();
}

std::vector<double>
Engine::objectiveVec(const sim::RunResult &result,
                     const Problem &problem) const
{
    std::vector<double> vec;
    for (ObjectiveKind kind : space.objectives) {
        switch (kind) {
          case ObjectiveKind::Speedup:
            vec.push_back(double(problem.baselineCycles) /
                          double(result.cycles));
            break;
          case ObjectiveKind::Cycles:
            vec.push_back(double(result.cycles));
            break;
          case ObjectiveKind::Energy:
            vec.push_back(result.energy.total());
            break;
          case ObjectiveKind::Edp:
            vec.push_back(result.energy.total() * double(result.cycles));
            break;
        }
    }
    return vec;
}

void
Engine::buildPending()
{
    if (pendingBuilt)
        return;
    pending.clear();
    pendingTargets.clear();
    switch (phase) {
      case Phase::Baselines:
        for (std::size_t p = 0; p < problems.size(); p++) {
            pending.push_back(problems[p].baselineJob);
            pendingTargets.push_back(p);
        }
        break;
      case Phase::Scout:
        for (std::size_t idx : scoutOrder) {
            if (pending.size() >= space.generationSize)
                break;
            const Candidate &cand = candidates[idx];
            if (cand.haveScout || cand.haveFull || cand.dead)
                continue;
            runner::Job scout = cand.job;
            scout.fidelity = space.scoutFidelity;
            pending.push_back(std::move(scout));
            pendingTargets.push_back(idx);
        }
        break;
      case Phase::Promote:
        for (std::size_t i = 0; i < candidates.size(); i++) {
            const Candidate &cand = candidates[i];
            if (cand.haveFull)
                continue;
            if (space.exhaustive ? cand.dead : !promoteEligible(cand))
                continue;
            pending.push_back(cand.job);
            pendingTargets.push_back(i);
        }
        break;
      case Phase::Done:
        break;
    }
    pendingBuilt = true;
}

bool
Engine::promoteEligible(const Candidate &cand) const
{
    if (!cand.haveScout)
        return false;
    const Problem &problem = problems[cand.problem];
    for (std::size_t f : problem.scoutFrontier) {
        if (&candidates[f] == &cand)
            return true; // frontier members always promote
    }
    for (std::size_t f : problem.scoutFrontier) {
        if (relMarginDominates(candidates[f].scoutVec, cand.scoutVec,
                               maximize, space.promoteMargin))
            return false;
    }
    return true;
}

std::vector<std::string>
Engine::start()
{
    if (started)
        fatal("explore: start() called twice");
    started = true;
    json::Object header;
    header.emplace("type", "header");
    header.emplace("schema_version", std::uint64_t(kExploreSchemaVersion));
    header.emplace("name", space.name);
    header.emplace("space", space.toJson());
    header.emplace("candidates", std::uint64_t(candidates.size()));
    header.emplace("problems", std::uint64_t(problems.size()));
    header.emplace("grid_cost_units", gridCost);
    std::vector<std::string> lines;
    lines.push_back(json::Value(std::move(header)).dump());
    // A speedup-less exhaustive space enters Promote directly; emit its
    // transition line so the stream always announces promotions before
    // their results arrive.
    if (phase == Phase::Promote) {
        buildPending();
        json::Object obj;
        obj.emplace("type", "promotion");
        obj.emplace("promoted", std::uint64_t(pending.size()));
        obj.emplace("cost_units", cost);
        lines.push_back(json::Value(std::move(obj)).dump());
        if (pending.empty())
            finalize(lines);
    }
    return lines;
}

const std::vector<runner::Job> &
Engine::nextBatch()
{
    buildPending();
    return pending;
}

void
Engine::applyOutcomes(const std::vector<runner::JobOutcome> &outcomes)
{
    buildPending();
    if (outcomes.size() != pending.size())
        fatal("explore: fed ", outcomes.size(), " outcomes for a batch of ",
              pending.size());
    for (std::size_t i = 0; i < outcomes.size(); i++) {
        if (outcomes[i].job.key() != pending[i].key())
            fatal("explore: outcome ", i, " is for job ",
                  outcomes[i].job.key(), ", expected ", pending[i].key());
    }

    for (std::size_t i = 0; i < outcomes.size(); i++) {
        const sim::RunResult &result = outcomes[i].result;
        cost += costFraction(result);
        switch (phase) {
          case Phase::Baselines: {
            Problem &problem = problems[pendingTargets[i]];
            problem.haveBaseline = true;
            problem.baselineCycles = result.cycles;
            // When baseline-ooo is itself on the mode axis, this run IS
            // that candidate's full evaluation — record it so neither
            // scouting nor promotion pays for the point again.
            for (std::size_t m : problem.members) {
                Candidate &cand = candidates[m];
                if (cand.job.key() == problem.baselineJob.key()) {
                    cand.haveFull = true;
                    cand.fullResult = result;
                    cand.fullVec = objectiveVec(result, problem);
                }
            }
            break;
          }
          case Phase::Scout: {
            Candidate &cand = candidates[pendingTargets[i]];
            cand.haveScout = true;
            cand.scoutVec =
                objectiveVec(result, problems[cand.problem]);
            // A full-fidelity scout (scout_fidelity=full, or a trace
            // shorter than the sampling window) doubles as the full
            // evaluation.
            if (!result.sampled) {
                cand.haveFull = true;
                cand.fullResult = result;
                cand.fullVec = cand.scoutVec;
            }
            break;
          }
          case Phase::Promote: {
            Candidate &cand = candidates[pendingTargets[i]];
            cand.haveFull = true;
            cand.fullResult = result;
            cand.fullVec =
                objectiveVec(result, problems[cand.problem]);
            break;
          }
          case Phase::Done:
            fatal("explore: feed() after completion");
        }
    }
}

void
Engine::refreshScoutFrontiers()
{
    for (Problem &problem : problems) {
        std::vector<std::vector<double>> points;
        std::vector<std::size_t> index;
        for (std::size_t m : problem.members) {
            if (candidates[m].haveScout) {
                points.push_back(candidates[m].scoutVec);
                index.push_back(m);
            }
        }
        problem.scoutFrontier.clear();
        for (std::size_t f : paretoFrontier(points, maximize))
            problem.scoutFrontier.push_back(index[f]);
    }
}

std::vector<std::string>
Engine::pruneRegions()
{
    std::vector<std::string> pruned;
    for (Problem &problem : problems) {
        // Regions are (axis, value) slices of this problem's members,
        // in a fixed axis order so the pruned-regions listing is
        // deterministic.
        struct Axis
        {
            const char *name;
            std::vector<std::pair<std::string, std::vector<std::size_t>>>
                groups;
        };
        auto slice = [&](const char *name, auto project) {
            Axis axis{name, {}};
            for (std::size_t m : problem.members) {
                std::string value = project(candidates[m].job);
                auto it = std::find_if(
                    axis.groups.begin(), axis.groups.end(),
                    [&](const auto &g) { return g.first == value; });
                if (it == axis.groups.end()) {
                    axis.groups.emplace_back(value,
                                             std::vector<std::size_t>{m});
                } else {
                    it->second.push_back(m);
                }
            }
            return axis;
        };
        std::vector<Axis> axes;
        if (space.modes.size() > 1) {
            axes.push_back(slice("mode", [](const runner::Job &job) {
                return std::string(sim::modeName(job.mode));
            }));
        }
        if (space.traceLengths.size() > 1) {
            axes.push_back(
                slice("trace_length", [](const runner::Job &job) {
                    return std::to_string(job.traceLength);
                }));
        }
        if (space.numFabrics.size() > 1) {
            axes.push_back(
                slice("num_fabrics", [](const runner::Job &job) {
                    return std::to_string(job.numFabrics);
                }));
        }

        for (const Axis &axis : axes) {
            for (const auto &[value, members] : axis.groups) {
                std::size_t scouted = 0;
                bool anySurvivor = false;
                bool anyPrunable = false;
                for (std::size_t m : members) {
                    const Candidate &cand = candidates[m];
                    if (cand.haveFull) {
                        // Fully evaluated points (baseline freebies)
                        // keep their region alive: they are frontier
                        // material regardless of scout margins.
                        anySurvivor = true;
                        continue;
                    }
                    if (!cand.haveScout) {
                        anyPrunable = anyPrunable || !cand.dead;
                        continue;
                    }
                    scouted++;
                    bool beaten = false;
                    for (std::size_t f : problem.scoutFrontier) {
                        if (f != m &&
                            relMarginDominates(
                                candidates[f].scoutVec, cand.scoutVec,
                                maximize, space.pruneMargin)) {
                            beaten = true;
                            break;
                        }
                    }
                    if (!beaten)
                        anySurvivor = true;
                }
                if (scouted < space.minRegionScouts || anySurvivor ||
                    !anyPrunable)
                    continue;
                for (std::size_t m : members) {
                    Candidate &cand = candidates[m];
                    if (!cand.haveScout && !cand.haveFull && !cand.dead)
                        cand.dead = true;
                }
                pruned.push_back(label(problem) + "|" + axis.name + "=" +
                                 value);
            }
        }
    }
    return pruned;
}

std::string
Engine::generationLine(std::size_t scouted,
                       const std::vector<std::string> &pruned) const
{
    json::Object obj;
    obj.emplace("type", "generation");
    obj.emplace("index", std::uint64_t(generation));
    obj.emplace("scouted", std::uint64_t(scouted));
    json::Array prunedArr;
    for (const std::string &region : pruned)
        prunedArr.emplace_back(region);
    obj.emplace("pruned_regions", std::move(prunedArr));
    json::Array frontiers;
    for (const Problem &problem : problems) {
        json::Object entry;
        entry.emplace("problem", label(problem));
        entry.emplace("size",
                      std::uint64_t(problem.scoutFrontier.size()));
        frontiers.emplace_back(std::move(entry));
    }
    obj.emplace("scout_frontiers", std::move(frontiers));
    obj.emplace("cost_units", cost);
    return json::Value(std::move(obj)).dump();
}

std::vector<std::string>
Engine::feed(const std::vector<runner::JobOutcome> &outcomes)
{
    if (!started)
        fatal("explore: feed() before start()");
    applyOutcomes(outcomes);
    std::vector<std::string> lines;
    advance(lines);
    return lines;
}

void
Engine::advance(std::vector<std::string> &lines)
{
    const Phase fed = phase;
    pendingBuilt = false;

    if (fed == Phase::Baselines) {
        json::Object obj;
        obj.emplace("type", "baselines");
        obj.emplace("jobs", std::uint64_t(pendingTargets.size()));
        obj.emplace("cost_units", cost);
        lines.push_back(json::Value(std::move(obj)).dump());
        phase = space.exhaustive ? Phase::Promote : Phase::Scout;
    } else if (fed == Phase::Scout) {
        const std::size_t scouted = pendingTargets.size();
        refreshScoutFrontiers();
        std::vector<std::string> pruned = pruneRegions();
        lines.push_back(generationLine(scouted, pruned));
        generation++;
        buildPending();
        if (pending.empty()) {
            phase = Phase::Promote;
            pendingBuilt = false;
        }
    } else if (fed == Phase::Promote) {
        finalize(lines);
        return;
    }

    // Entering Promote announces how many scouts survived; an empty
    // promotion set (everything needed is already at full fidelity)
    // finishes the search in the same step.
    if (phase == Phase::Promote && fed != Phase::Promote) {
        buildPending();
        json::Object obj;
        obj.emplace("type", "promotion");
        obj.emplace("promoted", std::uint64_t(pending.size()));
        obj.emplace("cost_units", cost);
        lines.push_back(json::Value(std::move(obj)).dump());
        if (pending.empty())
            finalize(lines);
    }
}

void
Engine::finalize(std::vector<std::string> &lines)
{
    phase = Phase::Done;
    pending.clear();
    pendingTargets.clear();
    pendingBuilt = true;

    const bool wantSpeedup =
        std::count(space.objectives.begin(), space.objectives.end(),
                   ObjectiveKind::Speedup) > 0;

    json::Array streamProblems;
    json::Array reportProblems;
    for (Problem &problem : problems) {
        std::vector<std::vector<double>> points;
        std::vector<std::size_t> index;
        for (std::size_t m : problem.members) {
            if (candidates[m].haveFull) {
                points.push_back(candidates[m].fullVec);
                index.push_back(m);
            }
        }
        std::vector<std::size_t> frontier =
            paretoFrontier(points, maximize);

        json::Array streamEntries;
        json::Array reportEntries;
        for (std::size_t f : frontier) {
            const Candidate &cand = candidates[index[f]];
            json::Object objectives;
            for (std::size_t o = 0; o < space.objectives.size(); o++) {
                objectives.emplace(objectiveName(space.objectives[o]),
                                   cand.fullVec[o]);
            }
            json::Object streamEntry;
            streamEntry.emplace("job_key", cand.job.key());
            streamEntry.emplace("objectives",
                                json::Value(objectives));
            streamEntries.emplace_back(std::move(streamEntry));
            json::Object reportEntry;
            reportEntry.emplace("job", runner::jobToJson(cand.job));
            reportEntry.emplace("objectives",
                                json::Value(std::move(objectives)));
            reportEntry.emplace("result",
                                runner::resultToJson(cand.fullResult));
            reportEntries.emplace_back(std::move(reportEntry));
        }

        json::Object streamProblem;
        streamProblem.emplace("problem", label(problem));
        streamProblem.emplace("frontier", std::move(streamEntries));
        streamProblems.emplace_back(std::move(streamProblem));

        json::Object reportProblem;
        reportProblem.emplace("workload", problem.workload);
        reportProblem.emplace("scale", std::uint64_t(problem.scale));
        if (wantSpeedup)
            reportProblem.emplace("baseline_cycles",
                                  problem.baselineCycles);
        reportProblem.emplace("frontier", std::move(reportEntries));
        reportProblems.emplace_back(std::move(reportProblem));
    }

    json::Object line;
    line.emplace("type", "frontier");
    line.emplace("problems", std::move(streamProblems));
    line.emplace("cost_units", cost);
    line.emplace("grid_cost_units", gridCost);
    lines.push_back(json::Value(std::move(line)).dump());

    json::Object doc;
    doc.emplace("schema_version",
                std::uint64_t(kExploreSchemaVersion));
    doc.emplace("name", space.name);
    doc.emplace("space", space.toJson());
    doc.emplace("cost_units", cost);
    doc.emplace("grid_cost_units", gridCost);
    doc.emplace("problems", std::move(reportProblems));
    report = json::Value(std::move(doc));
}

} // namespace dynaspam::explore
