/**
 * @file
 * Deterministic design-space-exploration engine.
 *
 * The engine turns a validated Space into batches of runner::Jobs and
 * consumes their results, tracking a Pareto frontier per problem
 * (workload, scale) across up to three objectives. The search is
 * generation-based successive halving: candidates are scouted at
 * sampled fidelity in seeded order, (axis, value) regions whose scouts
 * are all dominated by a clear margin are abandoned, and only scouts
 * that end within the promotion margin of the scout frontier are
 * promoted to full fidelity. The final frontier is computed purely from
 * full-fidelity results, so every reported point carries exact numbers.
 *
 * Determinism discipline: no wall clock, no RNG, no environment — the
 * candidate order is FNV-1a over (seed, job key), objective math is
 * straight IEEE arithmetic in a fixed order, and every emitted line and
 * the final report are byte-identical across thread counts, transports
 * and repeat runs (src/explore is part of dynaspam-analyze's
 * determinism domain).
 *
 * The engine is passive and re-entrant: callers alternate nextBatch()
 * / feed() until done(), which lets the same core drive the blocking
 * CLI and serve paths and the coordinator's single-threaded event loop.
 */

#ifndef DYNASPAM_EXPLORE_ENGINE_HH
#define DYNASPAM_EXPLORE_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "explore/space.hh"
#include "runner/report.hh"

namespace dynaspam::explore
{

/**
 * Indices of the non-dominated points in @p points. A point dominates
 * another when it is no worse in every objective and strictly better in
 * at least one; points with identical vectors are mutually
 * non-dominated and all kept. O(n^2), stable (result preserves input
 * order).
 * @param maximize per-objective direction, same arity as each point
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<std::vector<double>> &points,
               const std::vector<bool> &maximize);

/** NDJSON stream schema version (header line, final report). */
inline constexpr unsigned kExploreSchemaVersion = 1;

/** Drives one exploration of a Space. */
class Engine
{
  public:
    explicit Engine(Space space);

    /** @return true once the final frontier has been computed. */
    bool done() const { return phase == Phase::Done; }

    /**
     * Begin the stream: the header line plus any lines produced by
     * phase transitions that need no results (call exactly once,
     * before the first nextBatch).
     */
    std::vector<std::string> start();

    /**
     * The jobs the engine wants executed next. Stable across calls
     * until feed() consumes it; empty only when done().
     */
    const std::vector<runner::Job> &nextBatch();

    /**
     * Consume results for nextBatch() (same order) and advance.
     * @return the NDJSON lines this step produced, in emit order
     * @throws FatalError when outcomes do not match the pending batch
     */
    std::vector<std::string>
    feed(const std::vector<runner::JobOutcome> &outcomes);

    /**
     * The final report document (pretty-printed by the CLI). Only
     * valid once done().
     */
    const json::Value &finalReport() const { return report; }

    /**
     * Work executed so far, in full-fidelity job equivalents: a full
     * run costs 1.0, a sampled scout costs its detailed-instruction
     * fraction (sampled insts / total insts).
     */
    double costUnits() const { return cost; }

    /**
     * What exhaustive full-fidelity evaluation of the same space would
     * cost: every grid candidate plus any out-of-grid baseline runs
     * the speedup objective needs.
     */
    double gridCostUnits() const { return gridCost; }

    /** Number of grid candidates. */
    std::size_t candidateCount() const { return candidates.size(); }

  private:
    enum class Phase : std::uint8_t
    {
        Baselines,
        Scout,
        Promote,
        Done,
    };

    /** One grid point and its evaluation state. */
    struct Candidate
    {
        runner::Job job; ///< full-fidelity job for this point
        std::size_t problem = 0;
        std::uint64_t order = 0; ///< seeded scouting rank
        bool haveScout = false;
        bool haveFull = false;
        bool dead = false; ///< region pruned before scouting
        std::vector<double> scoutVec, fullVec;
        sim::RunResult fullResult;
    };

    /** One (workload, scale) problem with its own frontier. */
    struct Problem
    {
        std::string workload;
        unsigned scale = 1;
        runner::Job baselineJob;
        bool haveBaseline = false;
        std::uint64_t baselineCycles = 0;
        std::vector<std::size_t> members; ///< candidate indices
        std::vector<std::size_t> scoutFrontier; ///< candidate indices
    };

    std::string label(const Problem &problem) const;
    std::vector<double> objectiveVec(const sim::RunResult &result,
                                     const Problem &problem) const;
    void buildPending();
    void applyOutcomes(const std::vector<runner::JobOutcome> &outcomes);
    void refreshScoutFrontiers();
    std::vector<std::string> pruneRegions();
    bool promoteEligible(const Candidate &cand) const;
    void advance(std::vector<std::string> &lines);
    std::string generationLine(
        std::size_t scouted, const std::vector<std::string> &pruned) const;
    void finalize(std::vector<std::string> &lines);

    Space space;
    std::vector<bool> maximize; ///< per-objective direction
    std::vector<Problem> problems;
    std::vector<Candidate> candidates;
    std::vector<std::size_t> scoutOrder; ///< candidate indices, seeded

    Phase phase = Phase::Baselines;
    bool started = false;
    std::vector<runner::Job> pending;
    std::vector<std::size_t> pendingTargets; ///< problem or candidate idx
    bool pendingBuilt = false;
    unsigned generation = 0;
    double cost = 0.0;
    double gridCost = 0.0;
    json::Value report;
};

} // namespace dynaspam::explore

#endif // DYNASPAM_EXPLORE_ENGINE_HH
