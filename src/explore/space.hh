/**
 * @file
 * Design-space specification for the exploration engine.
 *
 * A Space describes a grid of candidate configurations — axes over
 * everything runner::Job encodes (workload, system mode, trace length,
 * fabric count, problem scale) — plus the objectives to optimize and
 * the knobs of the adaptive search (seed, generation size, scouting
 * fidelity, pruning margins). It is parsed from JSON with the same
 * strictness the serve daemon applies to /run bodies: unknown keys,
 * duplicate axis values, out-of-range numbers and malformed objective
 * lists are all fatal, so a request either describes exactly the space
 * the caller intended or is rejected up front with a clear message.
 *
 * The candidate grid groups into *problems* — one per (workload, scale)
 * pair. Pareto frontiers, scouting decisions and region pruning are all
 * tracked per problem: objective values (energy above all) are only
 * commensurable between configurations solving the same problem.
 */

#ifndef DYNASPAM_EXPLORE_SPACE_HH
#define DYNASPAM_EXPLORE_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "runner/job.hh"
#include "sim/system.hh"

namespace dynaspam::explore
{

/** What a candidate is scored on. */
enum class ObjectiveKind : std::uint8_t
{
    Speedup, ///< baseline-ooo cycles / candidate cycles (maximize)
    Cycles,  ///< total cycles (minimize)
    Energy,  ///< energy-model total in pJ (minimize)
    Edp,     ///< energy * cycles (minimize)
};

/** @return "speedup", "cycles", "energy" or "edp". */
const char *objectiveName(ObjectiveKind kind);

/** @return true when larger values of @p kind are better. */
bool objectiveMaximize(ObjectiveKind kind);

/**
 * Parse an objective token as printed by objectiveName.
 * @throws FatalError on an unknown token
 */
ObjectiveKind parseObjective(const std::string &token);

/** Maximum number of simultaneous objectives. */
inline constexpr std::size_t kMaxObjectives = 3;

/** Maximum candidate-grid size a single explore request may describe. */
inline constexpr std::size_t kMaxGridCandidates = 4096;

/** A validated design-space description. */
struct Space
{
    /** Report name echoed into the stream header and final report. */
    std::string name = "explore";

    /** Workload axis (required, unique, non-empty tags). */
    std::vector<std::string> workloads;

    /** Mode axis; defaults to the fig8 four-point comparison. */
    std::vector<sim::SystemMode> modes;

    /** Trace-length axis (sorted ascending, unique). */
    std::vector<unsigned> traceLengths = {32};

    /** Fabric-count axis (sorted ascending, unique). */
    std::vector<unsigned> numFabrics = {1};

    /** Problem-scale axis (sorted ascending, unique). */
    std::vector<unsigned> scales = {1};

    /** Objectives, 1..kMaxObjectives, unique. */
    std::vector<ObjectiveKind> objectives;

    /** Candidate-ordering seed (wall-clock-free determinism). */
    std::uint64_t seed = 0;

    /** Scouts dispatched per generation. */
    unsigned generationSize = 8;

    /**
     * Promotion slack: a scout is promoted to full fidelity unless some
     * scout-frontier point beats it by more than this relative margin
     * in every objective. Larger margins promote more candidates and
     * absorb more sampling error.
     */
    double promoteMargin = 0.02;

    /**
     * Region-kill threshold: an (axis, value) region is abandoned only
     * when every scouted member is beaten by at least this relative
     * margin in every objective.
     */
    double pruneMargin = 0.10;

    /** Minimum scouts in a region before it may be pruned. */
    unsigned minRegionScouts = 2;

    /** Fidelity scouts run at (full turns scouting into full evals). */
    runner::Fidelity scoutFidelity = runner::Fidelity::Sampled;

    /** Detailed warmup prefix applied to every generated job. */
    std::uint64_t warmupInsts = 0;

    /**
     * Skip scouting entirely and evaluate every grid candidate at full
     * fidelity. The provably exact reference the adaptive search is
     * benchmarked against.
     */
    bool exhaustive = false;

    /**
     * Parse and validate a space description.
     * @throws FatalError on unknown keys, bad types, out-of-range or
     *         duplicate values, or an over-large grid
     */
    static Space fromJson(const json::Value &value);

    /** Canonical JSON echo (used in the stream header / final report). */
    json::Value toJson() const;
};

} // namespace dynaspam::explore

#endif // DYNASPAM_EXPLORE_SPACE_HH
