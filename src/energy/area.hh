/**
 * @file
 * Area model for the DynaSpAM fabric.
 *
 * Module areas are seeded from the paper's Table 6, which reports
 * OpenSparc T1 functional units and the authors' synthesized datapath
 * block and FIFO at a 32 nm generic library. The fabric total composes
 * those modules per the Table 4 geometry, reproducing the paper's
 * ~2.9 mm^2 figure for an 8-stripe fabric. The configuration cache area
 * is the CACTI estimate the paper quotes.
 */

#ifndef DYNASPAM_ENERGY_AREA_HH
#define DYNASPAM_ENERGY_AREA_HH

#include <cstdint>

#include "fabric/params.hh"

namespace dynaspam::energy
{

/** Module areas in square micrometres (paper Table 6, 32 nm). */
struct AreaParams
{
    double sparcExuAlu = 4660.0;    ///< integer ALU
    double sparcMulTop = 47752.0;   ///< integer multiplier
    double sparcExuDiv = 11227.0;   ///< integer divider
    double fpuAdd = 34370.0;        ///< FP adder
    double fpuMul = 62488.0;        ///< FP multiplier
    double fpuDiv = 13769.0;        ///< FP divider
    double dataPath = 4717.0;       ///< pass registers + muxes per PE
    double fifo = 848.0;            ///< one live-in/live-out FIFO

    /** CACTI estimate for the configuration cache, in mm^2. */
    double configCacheMm2 = 0.003;
};

/** Computed area report. */
struct AreaReport
{
    double perStripeUm2 = 0.0;
    double fabricUm2 = 0.0;
    double fifosUm2 = 0.0;
    double totalUm2 = 0.0;
    double configCacheMm2 = 0.0;

    double totalMm2() const { return totalUm2 / 1e6; }
};

/**
 * Compose the fabric area from module areas and geometry.
 * @param params module areas
 * @param fp fabric geometry (stripes, unit mix, FIFO counts)
 * @param num_stripes stripe count to evaluate (the paper quotes 8)
 */
inline AreaReport
computeFabricArea(const AreaParams &params, const fabric::FabricParams &fp,
                  unsigned num_stripes)
{
    AreaReport report;
    const auto &units = fp.stripeUnits;

    double stripe = 0.0;
    stripe += units.intAlu * params.sparcExuAlu;
    stripe += units.intMulDiv * (params.sparcMulTop + params.sparcExuDiv);
    stripe += units.fpAlu * params.fpuAdd;
    stripe += units.fpMulDiv * (params.fpuMul + params.fpuDiv);
    // LDST units: address generation is ALU-class; the memory
    // reservation buffer is FIFO-class.
    stripe += units.ldst * (params.sparcExuAlu + params.fifo);
    // One datapath block (pass registers + muxes) per PE.
    stripe += double(units.total()) * params.dataPath;

    report.perStripeUm2 = stripe;
    report.fabricUm2 = stripe * double(num_stripes);
    report.fifosUm2 =
        double(fp.liveInFifos + fp.liveOutFifos) * params.fifo;
    report.totalUm2 = report.fabricUm2 + report.fifosUm2;
    report.configCacheMm2 = params.configCacheMm2;
    return report;
}

} // namespace dynaspam::energy

#endif // DYNASPAM_ENERGY_AREA_HH
