/**
 * @file
 * Event-based energy model (McPAT-class per-event energies).
 *
 * Every microarchitectural event counted by the timing models maps to a
 * per-event energy; leakage is charged per cycle, with the fabric's
 * per-PE power gating reflected by charging only the stripes a
 * configuration actually uses. The output is the per-component breakdown
 * of Figure 9: Fetch, Rename, InstSchedule, RegFile/Datapath, ROB,
 * Execution, Memory, Fabric, ConfigCache.
 */

#ifndef DYNASPAM_ENERGY_ENERGY_HH
#define DYNASPAM_ENERGY_ENERGY_HH

#include <cstdint>
#include <map>
#include <string>

#include "fabric/fabric.hh"
#include "memory/cache.hh"
#include "ooo/cpu.hh"

namespace dynaspam::energy
{

/**
 * Per-event energies in picojoules. Defaults are calibrated to published
 * 32 nm-class McPAT figures: they are not sign-off numbers, but their
 * ratios (e.g. FP divide vs integer ALU, L2 vs L1, CAM wakeup vs RAM
 * read) follow the literature so the Figure 9 breakdown shape holds.
 */
struct EnergyParams
{
    // Front end.
    double icacheAccess = 35.0;
    double fetchPerInst = 4.0;      ///< PC maintenance, predictor, buffers
    double decodePerInst = 3.0;

    // Rename.
    double renamePerInst = 7.0;     ///< RAT CAM + free-list

    // Instruction scheduling.
    double iqWakeupPerEntry = 0.6;  ///< CAM broadcast per resident entry
    double iqSelectPerIssue = 5.0;  ///< priority encoder grant
    double iqDispatchPerInst = 3.0;

    // Register file and operand datapath.
    double regReadPerOp = 6.0;
    double regWritePerOp = 8.0;
    double bypassPerOp = 3.5;       ///< bypass-network traversal

    // Reorder buffer.
    double robWrite = 4.0;
    double robRead = 3.0;

    // Execution units.
    double fuIntAlu = 10.0;
    double fuIntMulDiv = 38.0;
    double fuFpAlu = 28.0;
    double fuFpMulDiv = 52.0;
    double fuLdstAgu = 9.0;

    // Memory system.
    double l1dAccess = 30.0;
    double l2Access = 180.0;
    double dramAccess = 2000.0;

    // Spatial fabric. Per-op energy exceeds the bare FU energy: every
    // operation also latches its result into pass registers and drives
    // the configured muxes (the paper's Figure 9 shows fabric energy
    // above the baseline's Execution component alone).
    double fabricPeOpScale = 2.1;   ///< multiplies the matching FU energy
    double fabricHop = 4.0;         ///< one pass-register boundary hop
    double fabricFifoPush = 2.5;
    double fabricBusTransfer = 9.0;
    double fabricConfigPerInst = 12.0;   ///< writing one PE's config

    // Configuration cache (CACTI-style small SRAM).
    double configCacheAccess = 8.0;

    // Leakage, per cycle.
    double coreLeakPerCycle = 24.0;
    double fabricLeakPerStripePerCycle = 2.5;  ///< non-gated stripes only
};

/** Energy per component in picojoules. */
struct EnergyBreakdown
{
    std::map<std::string, double> component;

    double
    total() const
    {
        double sum = 0;
        for (const auto &kv : component)
            sum += kv.second;
        return sum;
    }
};

/** Cache-event summary extracted from a MemoryHierarchy. */
struct MemoryEvents
{
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t dramAccesses = 0;

    static MemoryEvents fromHierarchy(const mem::MemoryHierarchy &h);
};

/** Fabric-event summary (zero for the baseline). */
struct FabricEvents
{
    std::uint64_t peOpsByType[unsigned(isa::FuType::NUM_FU_TYPES)] = {};
    std::uint64_t peOps = 0;        ///< total (used when type split absent)
    std::uint64_t hops = 0;
    std::uint64_t fifoPushes = 0;
    std::uint64_t busTransfers = 0;
    std::uint64_t configuredInsts = 0;  ///< PE configurations written
    std::uint64_t configCacheAccesses = 0;
    std::uint64_t gatedStripeCycles = 0;    ///< stripes powered, per cycle
};

/** The energy model. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &p = EnergyParams{})
        : params(p)
    {
    }

    /**
     * Compute the per-component breakdown for one simulation.
     * @param pipe pipeline event counts
     * @param memory cache event counts
     * @param fab fabric event counts (default-constructed for baseline)
     */
    EnergyBreakdown compute(const ooo::PipelineStats &pipe,
                            const MemoryEvents &memory,
                            const FabricEvents &fab = FabricEvents{}) const;

    const EnergyParams &parameters() const { return params; }

  private:
    EnergyParams params;
};

} // namespace dynaspam::energy

#endif // DYNASPAM_ENERGY_ENERGY_HH
