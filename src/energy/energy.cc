/**
 * @file
 * Energy model implementation.
 */

#include "energy/energy.hh"

namespace dynaspam::energy
{

MemoryEvents
MemoryEvents::fromHierarchy(const mem::MemoryHierarchy &h)
{
    MemoryEvents ev;
    ev.l1iAccesses = h.l1i().hits() + h.l1i().misses();
    ev.l1dAccesses = h.l1d().hits() + h.l1d().misses();
    ev.l2Accesses = h.l2().hits() + h.l2().misses();
    ev.dramAccesses = h.l2().misses();
    return ev;
}

EnergyBreakdown
EnergyModel::compute(const ooo::PipelineStats &pipe,
                     const MemoryEvents &memory,
                     const FabricEvents &fab) const
{
    EnergyBreakdown out;
    auto &c = out.component;

    // Fetch: I-cache + fetch/decode per instruction brought in.
    c["Fetch"] = double(memory.l1iAccesses) * params.icacheAccess +
                 double(pipe.fetchedInsts) *
                     (params.fetchPerInst + params.decodePerInst);

    c["Rename"] = double(pipe.renamedInsts) * params.renamePerInst;

    c["InstSchedule"] =
        double(pipe.iqWakeups) * params.iqWakeupPerEntry +
        double(pipe.issuedInsts) * params.iqSelectPerIssue +
        double(pipe.dispatchedInsts) * params.iqDispatchPerInst;

    // Register file reads/writes plus the bypass network: the
    // "Datapath" component of Figure 9.
    c["Datapath"] = double(pipe.regReads) * params.regReadPerOp +
                    double(pipe.regWrites) * params.regWritePerOp +
                    double(pipe.bypasses) * params.bypassPerOp;

    c["ROB"] = double(pipe.robWrites) * params.robWrite +
               double(pipe.robReads) * params.robRead;

    auto fuEnergy = [this](isa::FuType type) {
        switch (type) {
          case isa::FuType::IntAlu:
            return params.fuIntAlu;
          case isa::FuType::IntMulDiv:
            return params.fuIntMulDiv;
          case isa::FuType::FpAlu:
            return params.fuFpAlu;
          case isa::FuType::FpMulDiv:
            return params.fuFpMulDiv;
          case isa::FuType::Ldst:
            return params.fuLdstAgu;
          default:
            return 0.0;
        }
    };

    double exec = 0.0;
    for (unsigned t = 0; t < unsigned(isa::FuType::NUM_FU_TYPES); t++)
        exec += double(pipe.fuOps[t]) * fuEnergy(isa::FuType(t));
    c["Execution"] = exec;

    c["Memory"] = double(memory.l1dAccesses) * params.l1dAccess +
                  double(memory.l2Accesses) * params.l2Access +
                  double(memory.dramAccesses) * params.dramAccess;

    // Fabric: PE operations (same industrial FUs as the OOO pipeline),
    // datapath hops, FIFOs, global bus, reconfiguration writes, plus
    // the leakage of non-power-gated stripes.
    double fab_pe = 0.0;
    bool have_split = false;
    for (unsigned t = 0; t < unsigned(isa::FuType::NUM_FU_TYPES); t++) {
        if (fab.peOpsByType[t]) {
            have_split = true;
            fab_pe += double(fab.peOpsByType[t]) * fuEnergy(isa::FuType(t));
        }
    }
    if (!have_split)
        fab_pe = double(fab.peOps) * params.fuIntAlu;
    c["Fabric"] = params.fabricPeOpScale * fab_pe +
                  double(fab.hops) * params.fabricHop +
                  double(fab.fifoPushes) * params.fabricFifoPush +
                  double(fab.busTransfers) * params.fabricBusTransfer +
                  double(fab.configuredInsts) * params.fabricConfigPerInst +
                  double(fab.gatedStripeCycles) *
                      params.fabricLeakPerStripePerCycle;

    c["ConfigCache"] =
        double(fab.configCacheAccesses) * params.configCacheAccess;

    c["Leakage"] = double(pipe.cycles) * params.coreLeakPerCycle;

    return out;
}

} // namespace dynaspam::energy
