/**
 * @file
 * Configuration cache implementation.
 */

#include "core/configcache.hh"

#include "common/logging.hh"

namespace dynaspam::core
{

ConfigCache::ConfigCache(const ConfigCacheParams &p)
    : params(p), entries(p.entries)
{
    if (!p.entries)
        fatal("configuration cache must have at least one entry");
    const unsigned max_counter = bits::counterMax(p.counterBits);
    if (p.offloadThreshold > max_counter)
        fatal("offload threshold ", p.offloadThreshold,
              " exceeds counter range ", max_counter);
}

ConfigCache::InsertOutcome
ConfigCache::insert(std::uint64_t key, fabric::FabricConfig config)
{
    InsertOutcome outcome;
    Entry &entry = entries[indexOf(key)];
    if (entry.valid && entry.key != key) {
        statEvictions++;
        outcome.evicted = true;
        outcome.evictedKey = entry.key;
    }
    entry.valid = true;
    entry.key = key;
    entry.counter = 0;
    entry.config =
        std::make_shared<const fabric::FabricConfig>(std::move(config));
    statInsertions++;
    return outcome;
}

std::shared_ptr<const fabric::FabricConfig>
ConfigCache::find(std::uint64_t key) const
{
    const Entry &entry = entries[indexOf(key)];
    if (entry.valid && entry.key == key)
        return entry.config;
    return nullptr;
}

bool
ConfigCache::recordPrediction(std::uint64_t key)
{
    lookups++;
    if (params.clearInterval && lookups % params.clearInterval == 0) {
        for (Entry &entry : entries)
            entry.counter = 0;
    }

    Entry &entry = entries[indexOf(key)];
    if (!entry.valid || entry.key != key)
        return false;
    const unsigned max_counter = bits::counterMax(params.counterBits);
    if (entry.counter < max_counter)
        entry.counter++;
    return entry.counter >= params.offloadThreshold;
}

void
ConfigCache::penalize(std::uint64_t key)
{
    Entry &entry = entries[indexOf(key)];
    if (entry.valid && entry.key == key)
        entry.counter = 0;
}

bool
ConfigCache::readyToOffload(std::uint64_t key) const
{
    const Entry &entry = entries[indexOf(key)];
    return entry.valid && entry.key == key &&
           entry.counter >= params.offloadThreshold;
}

} // namespace dynaspam::core
