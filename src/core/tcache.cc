/**
 * @file
 * T-Cache implementation.
 */

#include "core/tcache.hh"

#include "common/logging.hh"

namespace dynaspam::core
{

TCache::TCache(const TCacheParams &p) : params(p), entries(p.entries)
{
    if (!p.entries)
        fatal("T-Cache must have at least one entry");
    const unsigned max_counter = bits::counterMax(p.counterBits);
    if (p.hotThreshold > max_counter)
        fatal("T-Cache hot threshold ", p.hotThreshold,
              " exceeds counter range ", max_counter);
}

void
TCache::commitBranch(InstAddr pc, bool taken)
{
    commitCount++;
    if (params.clearInterval && commitCount % params.clearInterval == 0) {
        // Periodic clearing: evict stale traces so infrequent ones do
        // not keep occupying the fabric (Section 3.1).
        for (Entry &entry : entries) {
            entry.counter = 0;
            entry.hot = false;
        }
        statClears++;
    }

    if (historyCount < 3) {
        history[historyCount++] = {pc, taken};
        if (historyCount < 3)
            return;
    } else {
        history[0] = history[1];
        history[1] = history[2];
        history[2] = {pc, taken};
    }

    const std::uint64_t key = makeTraceKey(
        history[0].pc, history[0].taken, history[1].taken,
        history[2].taken);

    Entry &entry = entries[indexOf(key)];
    if (!entry.valid || entry.key != key) {
        entry.valid = true;
        entry.key = key;
        entry.counter = 0;
        entry.hot = false;
    }
    const unsigned max_counter = bits::counterMax(params.counterBits);
    if (entry.counter < max_counter)
        entry.counter++;
    if (entry.counter > params.hotThreshold)
        entry.hot = true;
    statTrainings++;
}

bool
TCache::isHot(std::uint64_t key) const
{
    const Entry &entry = entries[indexOf(key)];
    return entry.valid && entry.key == key && entry.hot;
}

} // namespace dynaspam::core
