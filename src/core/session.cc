/**
 * @file
 * Mapping session implementation: PriorityGen (Algorithm 2),
 * UpdateTables (Algorithm 3), frontier advance and config construction.
 */

#include "core/session.hh"

#include <algorithm>
#include <numeric>

#include "common/binio.hh"
#include "common/logging.hh"
#include "isa/opcodes.hh"

namespace dynaspam::core
{

MappingSession::MappingSession(const fabric::FabricParams &p, SeqNum idx,
                               std::uint32_t num_records, std::uint64_t key)
    : params(p), startIdx(idx), traceLen(num_records), traceKey(key),
      peAllocated(p.pesPerStripe(), false),
      reuseSet(p.numStripes + 1),
      boundaryUsage(p.numStripes + 1, 0)
{
}

MappingSession::OperandClass
MappingSession::classifyOperand(RegIndex phys) const
{
    OperandClass oc;
    if (phys == REG_INVALID)
        return oc;

    auto it = prodTable.find(phys);
    if (it == prodTable.end()) {
        // No producer in the trace: a live-in (Algorithm 2 lines 6-8).
        // A new live-in needs a free FIFO slot.
        if (!liveInSlot.count(phys) &&
            liveInSlot.size() >= params.liveInFifos) {
            oc.kind = OperandClass::Infeasible;
        } else {
            oc.kind = OperandClass::LiveIn;
        }
        return oc;
    }

    oc.producerIdx = it->second.instIdx;
    const unsigned prod_stripe = it->second.stripe;

    // Pass registers of the previous stripe (Algorithm 2 line 9).
    if (frontierStripe >= 1 &&
        reuseSet[frontierStripe].count(phys)) {
        oc.kind = OperandClass::Reuse;
        return oc;
    }

    // Producer placed in the frontier stripe itself: intra-stripe
    // communication is not possible in the acyclic fabric.
    if (prod_stripe >= frontierStripe) {
        oc.kind = OperandClass::Infeasible;
        return oc;
    }

    // Available datapaths to route the value (Algorithm 2 line 11)?
    // The value sits at boundary prod_stripe+1; it must be latched
    // through boundaries prod_stripe+2 .. frontier.
    const unsigned hops = frontierStripe - prod_stripe - 1;
    for (unsigned b = prod_stripe + 2; b <= frontierStripe; b++) {
        if (boundaryUsage[b] >= params.boundaryCapacity()) {
            oc.kind = OperandClass::Infeasible;
            return oc;
        }
    }
    oc.kind = OperandClass::Route;
    oc.hops = std::uint16_t(hops);
    return oc;
}

int
MappingSession::priorityScore(unsigned pe_index,
                              const ooo::DynInst &inst) const
{
    if (scheduleFailed)
        return 0;
    if (pe_index >= peAllocated.size() || peAllocated[pe_index])
        return -1;

    OperandClass c1 = classifyOperand(inst.src1Phys);
    OperandClass c2 = classifyOperand(inst.src2Phys);
    if (c1.kind == OperandClass::Infeasible ||
        c2.kind == OperandClass::Infeasible) {
        return -1;
    }

    unsigned ops = 0, need_inputs = 0, can_reuse = 0, can_route = 0;
    for (const OperandClass *oc : {&c1, &c2}) {
        switch (oc->kind) {
          case OperandClass::Unused:
            break;
          case OperandClass::LiveIn:
            ops++;
            need_inputs++;
            break;
          case OperandClass::Reuse:
            ops++;
            can_reuse++;
            break;
          case OperandClass::Route:
            ops++;
            can_route++;
            break;
          case OperandClass::Infeasible:
            return -1;
        }
    }

    // Table 2 / Algorithm 2 lines 13-26.
    if (need_inputs == 2)
        return inputPorts(frontierStripe) >= 2 ? 3 : -1;

    // A single live-in is acquired from the global bus through the PE's
    // input port on each use (footnote 2), i.e. it routes.
    can_route += need_inputs;

    if (ops == 2 && can_reuse == 2)
        return 2;
    if (can_reuse > 0 && can_reuse + can_route == ops)
        return 1;
    if (can_route == ops)
        return 0;
    return -1;
}

void
MappingSession::recordSelection(unsigned pe_index, const ooo::DynInst &inst,
                                SeqNum mapping_trace_idx)
{
    if (scheduleFailed)
        return;
    if (pe_index >= peAllocated.size() || peAllocated[pe_index])
        panic("recordSelection on an unavailable PE");

    const std::uint16_t issue_idx = std::uint16_t(order.size());

    auto routeFor = [&](RegIndex phys, RegIndex arch) {
        fabric::OperandRoute route;
        if (phys == REG_INVALID)
            return route;
        OperandClass oc = classifyOperand(phys);
        switch (oc.kind) {
          case OperandClass::LiveIn: {
            auto it = liveInSlot.find(phys);
            std::uint16_t slot;
            if (it == liveInSlot.end()) {
                slot = std::uint16_t(liveInArch.size());
                liveInSlot.emplace(phys, slot);
                liveInArch.push_back(arch);
            } else {
                slot = it->second;
            }
            route.kind = fabric::OperandRoute::Kind::LiveIn;
            route.liveInIdx = slot;
            break;
          }
          case OperandClass::Reuse:
            route.kind = fabric::OperandRoute::Kind::PassReg;
            route.producerIdx = oc.producerIdx;
            statReuse++;
            break;
          case OperandClass::Route: {
            route.kind = fabric::OperandRoute::Kind::Routed;
            route.producerIdx = oc.producerIdx;
            route.hops = oc.hops;
            statHops += oc.hops;
            // Algorithm 3 lines 5-9: allocate the new datapath and make
            // the value reusable along it.
            const unsigned prod_stripe =
                prodTable.at(phys).stripe;
            for (unsigned b = prod_stripe + 2; b <= frontierStripe; b++) {
                boundaryUsage[b]++;
                reuseSet[b].insert(phys);
            }
            break;
          }
          case OperandClass::Unused:
          case OperandClass::Infeasible:
            panic("routing an operand that scored infeasible");
        }
        return route;
    };

    Placement placement;
    placement.traceOffset =
        std::uint32_t(inst.traceIdx - mapping_trace_idx);
    placement.pe = {std::uint8_t(frontierStripe), std::uint8_t(pe_index)};
    placement.src1 = routeFor(inst.src1Phys, inst.inst->src1);
    placement.src2 = routeFor(inst.src2Phys, inst.inst->src2);

    // Algorithm 3 line 2: ProdTable(Inst.dest) <- FabricPE.
    if (inst.inst->hasDest()) {
        prodTable[inst.destPhys] = {issue_idx,
                                    std::uint8_t(frontierStripe)};
        producedThisStripe.push_back(inst.destPhys);

        // Last-Used-Location bookkeeping: redefinition of an
        // architectural register kills the previous value, so it stops
        // propagating on frontier advances.
        auto it = archLatestPhys.find(inst.inst->dest);
        if (it != archLatestPhys.end())
            deadPhys.insert(it->second);
        archLatestPhys[inst.inst->dest] = inst.destPhys;
    }

    peAllocated[pe_index] = true;
    order.push_back(placement);
    destArchOf.push_back(inst.inst->dest);
    opOf.push_back(inst.inst->op);
    pcOf.push_back(inst.pc);
}

void
MappingSession::advanceFrontier()
{
    if (scheduleFailed)
        return;
    frontierStripe++;
    if (frontierStripe >= params.numStripes) {
        // Algorithm 1 line 3: SCHEDULE_FAIL.
        scheduleFailed = true;
        return;
    }

    std::fill(peAllocated.begin(), peAllocated.end(), false);
    const unsigned b = frontierStripe;    // boundary feeding the new stripe

    // Values produced in the previous stripe latch into this boundary's
    // pass registers (their output latches).
    for (RegIndex phys : producedThisStripe) {
        if (reuseSet[b].insert(phys).second)
            boundaryUsage[b]++;
    }
    producedThisStripe.clear();

    // Potential live-outs propagate to increase reuse probability, while
    // pass-register capacity remains; killed values are dropped.
    for (RegIndex phys : reuseSet[b - 1]) {
        if (deadPhys.count(phys))
            continue;
        if (boundaryUsage[b] >= params.boundaryCapacity())
            break;
        if (reuseSet[b].insert(phys).second)
            boundaryUsage[b]++;
    }
}

std::optional<fabric::FabricConfig>
MappingSession::buildConfig(const isa::DynamicTrace &trace) const
{
    if (scheduleFailed || order.size() != traceLen)
        return std::nullopt;

    // Remap issue order to trace program order.
    std::vector<std::uint16_t> perm(order.size());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(),
              [this](std::uint16_t a, std::uint16_t b) {
                  return order[a].traceOffset < order[b].traceOffset;
              });
    std::vector<std::uint16_t> prog_pos(order.size());
    for (std::uint16_t pos = 0; pos < perm.size(); pos++) {
        if (pos > 0 &&
            order[perm[pos]].traceOffset == order[perm[pos - 1]].traceOffset)
            return std::nullopt;    // duplicate offsets: corrupt session
        prog_pos[perm[pos]] = pos;
    }

    fabric::FabricConfig config;
    config.key = traceKey;
    config.mappedFromIdx = startIdx;
    config.numRecords = traceLen;
    config.liveIns = liveInArch;

    auto remapRoute = [&](fabric::OperandRoute route) {
        if (route.kind == fabric::OperandRoute::Kind::PassReg ||
            route.kind == fabric::OperandRoute::Kind::Routed) {
            route.producerIdx = prog_pos[route.producerIdx];
        }
        return route;
    };

    unsigned max_stripe = 0;
    for (std::uint16_t pos = 0; pos < perm.size(); pos++) {
        const std::uint16_t issue_idx = perm[pos];
        const Placement &pl = order[issue_idx];

        fabric::MappedInst mi;
        mi.pc = pcOf[issue_idx];
        mi.op = opOf[issue_idx];
        mi.pe = pl.pe;
        mi.src1 = remapRoute(pl.src1);
        mi.src2 = remapRoute(pl.src2);
        mi.destArch = destArchOf[issue_idx];
        mi.isLoad = isa::isLoad(mi.op);
        mi.isStore = isa::isStore(mi.op);
        mi.isBranch = isa::isControl(mi.op);
        if (mi.isBranch)
            mi.expectedTaken = trace[startIdx + pl.traceOffset].taken;

        config.hasStores |= mi.isStore;
        max_stripe = std::max(max_stripe, unsigned(mi.pe.stripe));
        config.insts.push_back(mi);
    }
    config.stripesUsed = std::uint8_t(max_stripe + 1);

    // Live-outs: the last writer of each architectural register.
    std::unordered_map<RegIndex, std::uint16_t> last_writer;
    for (std::uint16_t pos = 0; pos < config.insts.size(); pos++) {
        RegIndex arch = config.insts[pos].destArch;
        if (arch != REG_INVALID)
            last_writer[arch] = pos;
    }
    for (const auto &[arch, pos] : last_writer)
        config.liveOuts.push_back({arch, pos});
    std::sort(config.liveOuts.begin(), config.liveOuts.end(),
              [](const fabric::LiveOut &a, const fabric::LiveOut &b) {
                  return a.arch < b.arch;
              });

    if (config.liveOuts.size() > params.liveOutFifos)
        return std::nullopt;
    if (config.liveIns.size() > params.liveInFifos)
        return std::nullopt;

    return config;
}

namespace
{

void
serializeRoute(binio::Writer &out, const fabric::OperandRoute &route)
{
    out.u8(std::uint8_t(route.kind));
    out.u32(route.producerIdx);
    out.u32(route.liveInIdx);
    out.u32(route.hops);
}

fabric::OperandRoute
deserializeRoute(binio::Reader &in)
{
    fabric::OperandRoute route;
    std::uint8_t kind = in.u8();
    if (kind > std::uint8_t(fabric::OperandRoute::Kind::Routed))
        in.fail();
    else
        route.kind = fabric::OperandRoute::Kind(kind);
    route.producerIdx = std::uint16_t(in.u32());
    route.liveInIdx = std::uint16_t(in.u32());
    route.hops = std::uint16_t(in.u32());
    return route;
}

/** Sorted keys of an unordered map/set, for deterministic encoding. */
template <typename Container>
std::vector<typename Container::key_type>
sortedKeys(const Container &c)
{
    std::vector<typename Container::key_type> keys;
    keys.reserve(c.size());
    for (const auto &entry : c) {
        if constexpr (requires { entry.first; })
            keys.push_back(entry.first);
        else
            keys.push_back(entry);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

void
MappingSession::serialize(binio::Writer &out) const
{
    // Fabric geometry first, so deserialize() can reconstruct a session
    // without outside context.
    out.u32(params.numStripes);
    out.u32(params.stripeUnits.intAlu);
    out.u32(params.stripeUnits.intMulDiv);
    out.u32(params.stripeUnits.fpAlu);
    out.u32(params.stripeUnits.fpMulDiv);
    out.u32(params.stripeUnits.ldst);
    out.u32(params.passRegsPerFu);
    out.u32(params.liveInFifos);
    out.u32(params.liveOutFifos);
    out.u32(params.fifoDepth);
    out.u64(params.globalBusLatency);
    out.u64(params.hopLatency);
    out.u64(params.configureCyclesPerStripe);
    out.b(params.memorySpeculation);

    out.u64(startIdx);
    out.u32(traceLen);
    out.u64(traceKey);
    out.u32(frontierStripe);
    out.b(scheduleFailed);

    out.u64(peAllocated.size());
    for (bool allocated : peAllocated)
        out.b(allocated);

    out.u64(prodTable.size());
    for (RegIndex phys : sortedKeys(prodTable)) {
        const ProdEntry &entry = prodTable.at(phys);
        out.u32(phys);
        out.u32(entry.instIdx);
        out.u8(entry.stripe);
    }

    out.u64(reuseSet.size());
    for (const auto &boundary : reuseSet) {
        out.u64(boundary.size());
        for (RegIndex phys : sortedKeys(boundary))
            out.u32(phys);
    }

    out.u64(boundaryUsage.size());
    for (unsigned usage : boundaryUsage)
        out.u32(usage);

    out.u64(producedThisStripe.size());
    for (RegIndex phys : producedThisStripe)
        out.u32(phys);

    out.u64(deadPhys.size());
    for (RegIndex phys : sortedKeys(deadPhys))
        out.u32(phys);

    out.u64(archLatestPhys.size());
    for (RegIndex arch : sortedKeys(archLatestPhys)) {
        out.u32(arch);
        out.u32(archLatestPhys.at(arch));
    }

    out.u64(liveInSlot.size());
    for (RegIndex phys : sortedKeys(liveInSlot)) {
        out.u32(phys);
        out.u32(liveInSlot.at(phys));
    }

    out.u64(liveInArch.size());
    for (RegIndex arch : liveInArch)
        out.u32(arch);

    out.u64(order.size());
    for (const Placement &placement : order) {
        out.u32(placement.traceOffset);
        out.u8(placement.pe.stripe);
        out.u8(placement.pe.index);
        serializeRoute(out, placement.src1);
        serializeRoute(out, placement.src2);
    }

    out.u64(destArchOf.size());
    for (RegIndex arch : destArchOf)
        out.u32(arch);

    out.u64(opOf.size());
    for (isa::Opcode op : opOf)
        out.u8(std::uint8_t(op));

    out.u64(pcOf.size());
    for (InstAddr pc : pcOf)
        out.u32(pc);

    out.u64(statHops);
    out.u64(statReuse);
}

MappingSession
MappingSession::deserialize(binio::Reader &in)
{
    fabric::FabricParams params;
    params.numStripes = in.u32();
    params.stripeUnits.intAlu = in.u32();
    params.stripeUnits.intMulDiv = in.u32();
    params.stripeUnits.fpAlu = in.u32();
    params.stripeUnits.fpMulDiv = in.u32();
    params.stripeUnits.ldst = in.u32();
    params.passRegsPerFu = in.u32();
    params.liveInFifos = in.u32();
    params.liveOutFifos = in.u32();
    params.fifoDepth = in.u32();
    params.globalBusLatency = in.u64();
    params.hopLatency = in.u64();
    params.configureCyclesPerStripe = in.u64();
    params.memorySpeculation = in.b();

    // A corrupt geometry would make the constructor allocate absurdly;
    // fail before constructing.
    if (!in.ok() || params.numStripes == 0 || params.numStripes > 4096 ||
        params.pesPerStripe() == 0 || params.pesPerStripe() > 4096) {
        in.fail();
        return MappingSession(fabric::FabricParams{}, 0, 0, 0);
    }

    SeqNum start_idx = in.u64();
    std::uint32_t trace_len = in.u32();
    std::uint64_t trace_key = in.u64();

    MappingSession session(params, start_idx, trace_len, trace_key);
    session.frontierStripe = in.u32();
    session.scheduleFailed = in.b();

    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 1))
        return session;
    session.peAllocated.assign(count, false);
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        session.peAllocated[i] = in.b();

    count = in.u64();
    if (!in.checkCount(count, 9))
        return session;
    session.prodTable.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        RegIndex phys = RegIndex(in.u32());
        ProdEntry entry;
        entry.instIdx = std::uint16_t(in.u32());
        entry.stripe = in.u8();
        session.prodTable.emplace(phys, entry);
    }

    count = in.u64();
    if (!in.checkCount(count, 8))
        return session;
    session.reuseSet.assign(count, {});
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        std::uint64_t inner = in.u64();
        if (!in.checkCount(inner, 4))
            return session;
        for (std::uint64_t j = 0; j < inner && in.ok(); j++)
            session.reuseSet[i].insert(RegIndex(in.u32()));
    }

    count = in.u64();
    if (!in.checkCount(count, 4))
        return session;
    session.boundaryUsage.assign(count, 0);
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        session.boundaryUsage[i] = in.u32();

    count = in.u64();
    if (!in.checkCount(count, 4))
        return session;
    session.producedThisStripe.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        session.producedThisStripe.push_back(RegIndex(in.u32()));

    count = in.u64();
    if (!in.checkCount(count, 4))
        return session;
    session.deadPhys.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        session.deadPhys.insert(RegIndex(in.u32()));

    count = in.u64();
    if (!in.checkCount(count, 8))
        return session;
    session.archLatestPhys.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        RegIndex arch = RegIndex(in.u32());
        session.archLatestPhys.emplace(arch, RegIndex(in.u32()));
    }

    count = in.u64();
    if (!in.checkCount(count, 8))
        return session;
    session.liveInSlot.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        RegIndex phys = RegIndex(in.u32());
        session.liveInSlot.emplace(phys, std::uint16_t(in.u32()));
    }

    count = in.u64();
    if (!in.checkCount(count, 4))
        return session;
    session.liveInArch.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        session.liveInArch.push_back(RegIndex(in.u32()));

    count = in.u64();
    if (!in.checkCount(count, 32))
        return session;
    session.order.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        Placement placement;
        placement.traceOffset = in.u32();
        placement.pe.stripe = in.u8();
        placement.pe.index = in.u8();
        placement.src1 = deserializeRoute(in);
        placement.src2 = deserializeRoute(in);
        session.order.push_back(placement);
    }

    count = in.u64();
    if (!in.checkCount(count, 4))
        return session;
    session.destArchOf.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        session.destArchOf.push_back(RegIndex(in.u32()));

    count = in.u64();
    if (!in.checkCount(count, 1))
        return session;
    session.opOf.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        std::uint8_t op = in.u8();
        if (op >= std::uint8_t(isa::Opcode::NUM_OPCODES))
            in.fail();
        else
            session.opOf.push_back(isa::Opcode(op));
    }

    count = in.u64();
    if (!in.checkCount(count, 4))
        return session;
    session.pcOf.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        session.pcOf.push_back(InstAddr(in.u32()));

    session.statHops = in.u64();
    session.statReuse = in.u64();
    return session;
}

} // namespace dynaspam::core
