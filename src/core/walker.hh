/**
 * @file
 * Predicted-path trace walker.
 *
 * When the fetch unit receives a branch instruction, it retrieves the
 * predictions for the next three branches from the branch predictor to
 * build a T-Cache index, and — if the trace is hot — grabs instructions
 * until the fourth branch (Section 3.1), capped at the preset trace
 * length. This walker performs that lookahead over the *static* program
 * using predictor peeks only (no oracle knowledge), simulating the global
 * history shifts of the branches it passes.
 */

#ifndef DYNASPAM_CORE_WALKER_HH
#define DYNASPAM_CORE_WALKER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"
#include "ooo/bpred.hh"

namespace dynaspam::core
{

/** Result of walking the predicted path from a trace anchor branch. */
struct TraceWalk
{
    bool valid = false;

    /** T-Cache key: anchor PC plus first three predicted outcomes. */
    std::uint64_t key = 0;

    /** PCs of the trace extent, anchor first. */
    std::vector<InstAddr> pcs;

    /** Predicted directions, parallel to pcs (meaningful for branches). */
    std::vector<bool> predictedTaken;

    unsigned numCondBranches = 0;   ///< conditional branches in the extent
};

/** Result of the key-only prefix of a predicted-path walk. */
struct TraceKeyProbe
{
    bool valid = false;
    std::uint64_t key = 0;  ///< same key walkPredictedPath would produce
};

/**
 * Compute just the T-Cache key for the trace anchored at @p anchor_pc,
 * without materialising the extent vectors.
 *
 * This runs exactly the key-determining prefix of walkPredictedPath (the
 * walk up to the third conditional branch, with identical failure
 * conditions), so `probe.valid == walk.valid` and, when valid,
 * `probe.key == walk.key`. The fetch fast path uses it to consult the
 * T-Cache before paying for the full walk: walkPredictedPath always puts
 * the anchor into pcs, so the full walk can never turn invalid after the
 * key prefix succeeds.
 */
TraceKeyProbe probeTraceKey(const isa::Program &program,
                            const ooo::BranchPredictor &bpred,
                            InstAddr anchor_pc, unsigned max_len);

/**
 * Walk the predicted path starting at the conditional branch @p anchor_pc.
 *
 * The walk fails (valid == false) when it meets a RET (no walkable RAS),
 * a HALT, a predicted-taken branch with no BTB target, or fewer than
 * three conditional branches within a bounded lookahead.
 *
 * @param program static program
 * @param bpred predictor to peek (state is not modified)
 * @param anchor_pc PC of the anchor conditional branch
 * @param max_len trace length cap in instructions (paper: 16-40)
 */
TraceWalk walkPredictedPath(const isa::Program &program,
                            const ooo::BranchPredictor &bpred,
                            InstAddr anchor_pc, unsigned max_len);

} // namespace dynaspam::core

#endif // DYNASPAM_CORE_WALKER_HH
