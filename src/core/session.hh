/**
 * @file
 * Mapping session: the status tables of the mapping generator
 * (Section 4.2) and the placement record a FabricConfig is built from.
 *
 * A session lives for the duration of one trace-mapping phase. It holds:
 *  - ProdTable: physical register -> producing instruction location (CAM)
 *  - ReuseSet: per stripe boundary, the physical registers whose values
 *    sit in that boundary's pass registers
 *  - OverallUsage: per-boundary pass-register (datapath) occupancy
 *  - the Live-Out/Last-Used tracking that stops propagating killed values
 *  - the scheduling frontier index and per-PE allocation of the frontier
 */

#ifndef DYNASPAM_CORE_SESSION_HH
#define DYNASPAM_CORE_SESSION_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "fabric/config.hh"
#include "fabric/params.hh"
#include "isa/trace.hh"
#include "ooo/dyninst.hh"

namespace dynaspam::binio
{
class Writer;
class Reader;
} // namespace dynaspam::binio

namespace dynaspam::core
{

/** One placed instruction, recorded at issue time. */
struct Placement
{
    std::uint32_t traceOffset = 0;  ///< position within the trace
    fabric::PeId pe;
    fabric::OperandRoute src1;
    fabric::OperandRoute src2;

    bool operator==(const Placement &) const = default;
};

/**
 * The mapping generator's working state for one trace.
 */
class MappingSession
{
  public:
    /**
     * @param params fabric geometry
     * @param trace_idx first oracle record of the trace being mapped
     * @param num_records trace length in records
     * @param key T-Cache key of the trace
     */
    MappingSession(const fabric::FabricParams &params, SeqNum trace_idx,
                   std::uint32_t num_records, std::uint64_t key);

    // --- Frontier management -------------------------------------------

    unsigned frontier() const { return frontierStripe; }
    bool failed() const { return scheduleFailed; }
    void markFailed() { scheduleFailed = true; }

    /**
     * Advance the scheduling frontier to the next stripe: produced values
     * latch into the next boundary's pass registers, and still-live older
     * values propagate while capacity remains (the Live-Out Table /
     * Last-Used-Location behaviour). Fails the schedule when the frontier
     * leaves the fabric.
     */
    void advanceFrontier();

    /** @return true when PE @p index of the frontier stripe is free. */
    bool peFree(unsigned index) const { return !peAllocated.at(index); }

    // --- Priority generation (Algorithm 2) ------------------------------

    /**
     * Score placing @p inst on frontier PE @p pe_index, per Table 2:
     * 3 = needs two live-in ports and the PE has them; 2 = both operands
     * reusable from pass registers; 1 = one reusable, one routable;
     * 0 = all routable; -1 = infeasible.
     */
    int priorityScore(unsigned pe_index, const ooo::DynInst &inst) const;

    // --- Table update (Algorithm 3) -------------------------------------

    /**
     * Record that @p inst was issued to frontier PE @p pe_index: update
     * ProdTable, allocate routing datapaths, assign live-in FIFO slots.
     */
    void recordSelection(unsigned pe_index, const ooo::DynInst &inst,
                         SeqNum mapping_trace_idx);

    // --- Config construction ---------------------------------------------

    std::uint32_t placedCount() const { return std::uint32_t(order.size()); }
    std::uint32_t numRecords() const { return traceLen; }
    SeqNum traceIdx() const { return startIdx; }
    std::uint64_t key() const { return traceKey; }

    /**
     * Build the final FabricConfig once every trace instruction has been
     * placed. Returns nullopt when the schedule failed, not all records
     * were placed, or the live-in/live-out counts exceed the FIFOs.
     *
     * @param trace oracle trace (for branch path outcomes)
     */
    std::optional<fabric::FabricConfig>
    buildConfig(const isa::DynamicTrace &trace) const;

    // Aggregate routing-quality metrics (for the mapper ablation bench).
    std::uint64_t totalHops() const { return statHops; }
    std::uint64_t reuseHits() const { return statReuse; }

    /** Sessions are value-semantic: a plain copy is a deep snapshot, and
     *  member-wise equality is the snapshot-diff criterion. */
    bool operator==(const MappingSession &) const = default;

    /** Append the full session state (fabric geometry included, so the
     *  encoding is standalone) to @p out; deterministic byte order. */
    void serialize(binio::Writer &out) const;

    /** Rebuild a session from @p in. On corrupt input the reader's
     *  failure flag latches; callers must check `in.ok()` afterwards. */
    static MappingSession deserialize(binio::Reader &in);

  private:
    /** Number of live-in ports a PE at @p stripe offers. */
    unsigned inputPorts(unsigned stripe) const { return stripe == 0 ? 2 : 1; }

    struct ProdEntry
    {
        std::uint16_t instIdx = 0xffff;     ///< index into `order`
        std::uint8_t stripe = 0;

        bool operator==(const ProdEntry &) const = default;
    };

    /** Classify one operand for scoring/routing. */
    struct OperandClass
    {
        enum Kind { Unused, LiveIn, Reuse, Route, Infeasible } kind = Unused;
        std::uint16_t producerIdx = 0xffff;
        std::uint16_t hops = 0;
    };
    OperandClass classifyOperand(RegIndex phys) const;

    fabric::FabricParams params;
    SeqNum startIdx;
    std::uint32_t traceLen;
    std::uint64_t traceKey;

    unsigned frontierStripe = 0;
    bool scheduleFailed = false;
    std::vector<bool> peAllocated;      ///< frontier-stripe allocation

    /// ProdTable: physical register -> producer location.
    std::unordered_map<RegIndex, ProdEntry> prodTable;

    /// ReuseSet per boundary: boundary b feeds stripe b.
    std::vector<std::unordered_set<RegIndex>> reuseSet;

    /// OverallUsage: allocated pass registers per boundary.
    std::vector<unsigned> boundaryUsage;

    /// Values produced in the current frontier stripe (phys regs).
    std::vector<RegIndex> producedThisStripe;

    /// Killed values (arch reg redefined): stop propagating them.
    std::unordered_set<RegIndex> deadPhys;
    std::unordered_map<RegIndex, RegIndex> archLatestPhys;

    /// Live-in FIFO assignment: phys reg -> FIFO index; arch per slot.
    std::unordered_map<RegIndex, std::uint16_t> liveInSlot;
    std::vector<RegIndex> liveInArch;

    /// Placement record, in issue order; traceOffset gives program order.
    std::vector<Placement> order;
    /// destArch per placement (for live-out computation).
    std::vector<RegIndex> destArchOf;
    /// opcode and pc per placement.
    std::vector<isa::Opcode> opOf;
    std::vector<InstAddr> pcOf;

    std::uint64_t statHops = 0;
    std::uint64_t statReuse = 0;
};

} // namespace dynaspam::core

#endif // DYNASPAM_CORE_SESSION_HH
