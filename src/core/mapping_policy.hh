/**
 * @file
 * Issue-unit priority policies used during a trace-mapping phase.
 *
 * ResourceAwarePolicy realizes the paper's contribution: the issue unit's
 * priority encoder consults the mapping session's status tables
 * (Algorithm 2) and thereby simultaneously schedules for the OOO
 * functional units and places onto the fabric's scheduling frontier.
 *
 * NaiveOrderPolicy is the baseline (CCA/DIF-style): strict program order,
 * one instruction at a time, first available PE — the limited-scope
 * behaviour Section 2.2 argues against.
 */

#ifndef DYNASPAM_CORE_MAPPING_POLICY_HH
#define DYNASPAM_CORE_MAPPING_POLICY_HH

#include <memory>

#include "common/types.hh"
#include "core/session.hh"
#include "isa/opcodes.hh"
#include "ooo/policy.hh"

namespace dynaspam::core
{

/** Shared frontier/pause machinery for both mapping policies. */
class MappingPolicyBase : public ooo::SelectPolicy
{
  public:
    /**
     * Arm the policy for a new mapping phase.
     * @param session the session whose tables the policy consults
     * @param mapping_trace_idx first oracle record of the trace
     */
    void
    arm(MappingSession *session, SeqNum mapping_trace_idx)
    {
        sess = session;
        baseIdx = mapping_trace_idx;
        drainUntil = 0;
        advancePending = false;
        selectedThisCycle = false;
        vetoedReadyInst = false;
        lastNow = 0;
    }

    void disarm() { sess = nullptr; }
    MappingSession *session() { return sess; }

    /**
     * Armed-state capture for simulator snapshots. The session pointer
     * is encoded as a flag; restore() rebinds it to the controller's
     * (separately restored) session object.
     */
    struct SavedState
    {
        bool armed = false;
        SeqNum baseIdx = 0;
        Cycle drainUntil = 0;
        Cycle lastNow = 0;
        bool advancePending = false;
        bool selectedThisCycle = false;
        bool vetoedReadyInst = false;

        bool operator==(const SavedState &) const = default;
    };

    void
    save(SavedState &out) const
    {
        out.armed = sess != nullptr;
        out.baseIdx = baseIdx;
        out.drainUntil = drainUntil;
        out.lastNow = lastNow;
        out.advancePending = advancePending;
        out.selectedThisCycle = selectedThisCycle;
        out.vetoedReadyInst = vetoedReadyInst;
    }

    void
    restore(const SavedState &in, MappingSession *session)
    {
        sess = in.armed ? session : nullptr;
        baseIdx = in.baseIdx;
        drainUntil = in.drainUntil;
        lastNow = in.lastNow;
        advancePending = in.advancePending;
        selectedThisCycle = in.selectedThisCycle;
        vetoedReadyInst = in.vetoedReadyInst;
    }

    bool
    beginCycle(Cycle now) override
    {
        if (!sess)
            return true;
        lastNow = now;

        // Trigger a frontier advance when the previous cycle placed
        // nothing but vetoed at least one ready trace instruction, or
        // when the frontier filled up.
        if (!advancePending && !selectedThisCycle && vetoedReadyInst)
            advancePending = true;
        selectedThisCycle = false;
        vetoedReadyInst = false;

        if (advancePending) {
            // "The issue unit must pause if there are OOO functional
            // units that have not finished execution at the start of a
            // scheduling cycle" (Section 4.1, Special Issues).
            if (now < drainUntil)
                return false;
            sess->advanceFrontier();
            advancePending = false;
        }
        return true;
    }

    void
    selected(unsigned fu_index, const ooo::DynInst &inst) override
    {
        if (!sess || sess->failed() || !inst.mappingInst)
            return;
        sess->recordSelection(fu_index, inst, baseIdx);
        selectedThisCycle = true;

        // Estimated completion for the drain pause (loads add a couple
        // of cycles of cache access on top of address generation).
        unsigned lat = isa::opLatency(inst.inst->opClass());
        if (inst.isLoad())
            lat += 3;
        drainUntil = std::max(drainUntil, lastNow + lat);

        bool frontier_full = true;
        for (unsigned pe = 0; pe < peCount(); pe++) {
            if (sess->peFree(pe)) {
                frontier_full = false;
                break;
            }
        }
        if (frontier_full)
            advancePending = true;
    }

  protected:
    virtual unsigned peCount() const = 0;

    MappingSession *sess = nullptr;
    SeqNum baseIdx = 0;
    Cycle drainUntil = 0;
    Cycle lastNow = 0;
    bool advancePending = false;
    bool selectedThisCycle = false;
    bool vetoedReadyInst = false;
};

/** The paper's resource-aware scheduling policy (Algorithms 1-2). */
class ResourceAwarePolicy : public MappingPolicyBase
{
  public:
    explicit ResourceAwarePolicy(unsigned pes_per_stripe)
        : numPes(pes_per_stripe)
    {
    }

    int
    score(unsigned fu_index, const ooo::DynInst &inst) override
    {
        if (!sess)
            return 0;
        if (sess->failed())
            return 0;           // schedule failed: host rule takes over
        if (!inst.mappingInst)
            return -1;          // only trace instructions issue while
                                // the fabric is being mapped
        int s = sess->priorityScore(fu_index, inst);
        if (s < 0)
            vetoedReadyInst = true;
        return s;
    }

  protected:
    unsigned peCount() const override { return numPes; }

  private:
    unsigned numPes;
};

/**
 * Naive in-order mapping baseline: strictly program order, first free
 * feasible PE, no routing-cost awareness.
 */
class NaiveOrderPolicy : public MappingPolicyBase
{
  public:
    explicit NaiveOrderPolicy(unsigned pes_per_stripe)
        : numPes(pes_per_stripe)
    {
    }

    int
    score(unsigned fu_index, const ooo::DynInst &inst) override
    {
        if (!sess)
            return 0;
        if (sess->failed())
            return 0;
        if (!inst.mappingInst)
            return -1;
        // One instruction at a time, in program order. (Younger
        // instructions never force a frontier advance.)
        if (inst.traceIdx != baseIdx + sess->placedCount())
            return -1;
        int s = sess->priorityScore(fu_index, inst);
        if (s < 0) {
            vetoedReadyInst = true;
            return -1;
        }
        return 0;   // feasible: no preference between PEs (greedy)
    }

  protected:
    unsigned peCount() const override { return numPes; }

  private:
    unsigned numPes;
};

} // namespace dynaspam::core

#endif // DYNASPAM_CORE_MAPPING_POLICY_HH
