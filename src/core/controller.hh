/**
 * @file
 * The DynaSpAM controller: implements the three-phase framework of
 * Section 3 (trace detection, trace mapping, trace offloading) by
 * attaching to the host OOO pipeline's TraceHooks interface.
 *
 * Detection: T-Cache trained by committed conditional branches.
 * Mapping: when fetch meets a hot trace that is not yet mapped, the
 * controller validates the predicted path, holds dispatch for a pipeline
 * drain, and installs the resource-aware priority policy; the finished
 * placement is stored in the configuration cache.
 * Offloading: once a mapped trace's saturation counter reaches the
 * threshold, invocations run on a spatial fabric as fat atomic ROB
 * entries. Multiple fabrics are managed with an LRU policy, and the
 * configuration lifetime of each fabric is tracked for Table 5.
 */

#ifndef DYNASPAM_CORE_CONTROLLER_HH
#define DYNASPAM_CORE_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/configcache.hh"
#include "core/mapping_policy.hh"
#include "core/session.hh"
#include "core/tcache.hh"
#include "core/walker.hh"
#include "fabric/fabric.hh"
#include "isa/trace.hh"
#include "memory/cache.hh"
#include "ooo/bpred.hh"
#include "ooo/hooks.hh"
#include "ooo/storesets.hh"

namespace dynaspam::trace
{
class TraceSink;
} // namespace dynaspam::trace

namespace dynaspam::core
{

/** Which mapping algorithm drives the trace-mapping phase. */
enum class MapperKind : std::uint8_t
{
    ResourceAware,  ///< the paper's contribution (Algorithms 1-3)
    NaiveOrder,     ///< CCA/DIF-style in-order baseline
};

/** DynaSpAM framework configuration. */
struct DynaSpamParams
{
    /** Preset trace length in instructions (paper sweeps 16-40). */
    unsigned traceLength = 32;

    /** Enable offloading (false = "mapping only" configuration). */
    bool enableOffload = true;

    /** Number of on-chip fabrics (Table 5 evaluates 1, 2, 4, 8). */
    unsigned numFabrics = 1;

    MapperKind mapper = MapperKind::ResourceAware;

    /**
     * Minimum cycles between mapping phases. Each mapping drains the
     * pipeline back-end, so unbounded re-mapping of thrashing trace sets
     * (evicted from the 16-entry configuration cache and re-detected)
     * would swamp branchy programs; rate-limiting reconfiguration is
     * the stated intent of the paper's periodic counter clearing.
     */
    Cycle mappingCooldown = 1500;

    TCacheParams tcache;
    ConfigCacheParams configCache;
    fabric::FabricParams fabricParams;
};

/** Framework statistics (feeds Figure 7 and Table 5). */
struct DynaSpamStats
{
    std::uint64_t tracesConsidered = 0;     ///< hot-trace fetch hits
    std::uint64_t mappingsStarted = 0;
    std::uint64_t mappingsCompleted = 0;
    std::uint64_t mappingsAborted = 0;
    std::uint64_t mappingsDiscarded = 0;    ///< completed but invalid
    std::uint64_t offloadsIssued = 0;
    std::uint64_t invocationsCommitted = 0;
    std::uint64_t invocationsSquashed = 0;     ///< at-fault squashes
    std::uint64_t invocationsCollateral = 0;   ///< swept by older squashes
    std::uint64_t hotNotMapped = 0;        ///< hot but no config yet
    std::uint64_t offloadBelowThreshold = 0;
    std::uint64_t offloadSuppressed = 0;
    std::uint64_t instsOffloaded = 0;       ///< committed via the fabric
    std::uint64_t reconfigurations = 0;

    std::uint64_t distinctMappedTraces = 0;
    std::uint64_t distinctOffloadedTraces = 0;

    /** Sum/count of invocations-per-configuration (Table 5 lifetime). */
    std::uint64_t lifetimeSum = 0;
    std::uint64_t lifetimeCount = 0;

    double
    avgConfigLifetime() const
    {
        return lifetimeCount ? double(lifetimeSum) / double(lifetimeCount)
                             : 0.0;
    }

    bool operator==(const DynaSpamStats &) const = default;
};

/**
 * Divergence detector for forked-sweep warmup (the shared-prefix phase
 * of runner fork groups). The warmup simulation runs under one
 * representative configuration of a group of jobs that differ only in
 * knobs the prefix never consults; the controller raises `fired` at the
 * FIRST decision point whose outcome depends on a knob that differs
 * within the group. Everything simulated from the preceding safe
 * snapshot onwards is then discarded, so the guard only detects — it
 * never alters behaviour.
 */
struct WarmupGuard
{
    /** Which knobs differ among the group's jobs. */
    bool offloadDiverges = false;       ///< DynaSpamParams::enableOffload
    bool memSpecDiverges = false;       ///< FabricParams::memorySpeculation
    bool mapperDiverges = false;        ///< DynaSpamParams::mapper
    bool numFabricsDiverges = false;    ///< DynaSpamParams::numFabrics

    /** Set at the first consult of a divergent knob. */
    bool fired = false;
};

/**
 * The controller. One instance per simulated program run; attach with
 * OooCpu::setHooks().
 */
class DynaSpamController : public ooo::TraceHooks
{
  public:
    /**
     * @param params framework configuration
     * @param trace oracle trace of the program under simulation
     * @param bpred the host pipeline's branch predictor (peeked at fetch)
     * @param store_sets host memory dependence predictor (shared with
     *                   the fabric LDST units)
     * @param hierarchy data cache for fabric memory operations
     */
    DynaSpamController(const DynaSpamParams &params,
                       const isa::DynamicTrace &trace,
                       ooo::BranchPredictor &bpred,
                       ooo::StoreSetPredictor &store_sets,
                       mem::MemoryHierarchy &hierarchy);

    // --- TraceHooks ------------------------------------------------------
    ooo::FetchDirective beforeFetch(SeqNum trace_idx, Cycle now) override;
    void mappingStarted(SeqNum trace_idx, Cycle now) override;
    void mappingFinished(SeqNum trace_idx, Cycle now) override;
    void mappingAborted(SeqNum trace_idx, Cycle now) override;
    ooo::InvocationResult offloadStart(
        SeqNum trace_idx, std::uint32_t num_records, Cycle now,
        const std::vector<Cycle> &live_in_ready, Cycle mem_safe) override;
    void invocationCommitted(SeqNum trace_idx, Cycle now) override;
    void invocationSquashed(SeqNum trace_idx, Cycle now,
                            bool at_fault) override;
    void onCommitControl(InstAddr pc, bool taken, SeqNum trace_idx,
                         Cycle now) override;

    // --- Inspection ------------------------------------------------------
    const DynaSpamStats &stats() const { return dstats; }
    const TCache &tcache() const { return tCache; }
    const ConfigCache &configCache() const { return cfgCache; }
    const fabric::FabricParams &fabricConfigParams() const
    {
        return params.fabricParams;
    }
    const std::vector<std::unique_ptr<fabric::Fabric>> &fabrics() const
    {
        return fabricPool;
    }

    /** The policy installed into the pipeline during mapping phases.
     *  Stable for the controller's lifetime; pipeline snapshot restore
     *  rebinds its saved policy pointers to this object. */
    ooo::SelectPolicy *mappingPolicy() { return policy.get(); }

    /**
     * Attach an event-trace sink (nullptr detaches). Propagates to
     * every fabric in the pool, which sample FIFO occupancy into it.
     */
    void setTraceSink(trace::TraceSink *sink);

    /**
     * Close out lifetime statistics: counts the final configuration of
     * every fabric as one lifetime sample. Call once after the run.
     */
    void finalizeStats();

    /** Export statistics under "dynaspam." into @p registry. */
    void exportStats(StatRegistry &registry) const;

    /** Attach a forked-sweep warmup divergence guard (nullptr detaches).
     *  Pure detection: the attached guard never changes behaviour. */
    void setWarmupGuard(WarmupGuard *g) { guard = g; }

    /**
     * Complete mutable controller state for simulator snapshots.
     * Restore requires a controller built over the same trace with the
     * same T-Cache/ConfigCache/fabric parameters; numFabrics may differ
     * between saver and restorer ONLY while every fabric beyond the
     * smaller pool is still in its freshly-constructed state (the
     * forked-sweep warmup guard fires before a second fabric is ever
     * selected, which guarantees exactly that).
     */
    struct SavedState
    {
        TCache::SavedState tcache;
        ConfigCache::SavedState configCache;
        std::vector<fabric::Fabric::SavedState> fabrics;

        /** In-flight mapping session, if one was open. */
        std::optional<MappingSession> session;
        MappingPolicyBase::SavedState policy;
        bool mappingInProgress = false;
        std::uint64_t mappingKey = 0;
        Cycle lastMappingStart = 0;

        /** PendingInvocation with the fabric pointer as a pool index. */
        struct SavedPending
        {
            std::shared_ptr<const fabric::FabricConfig> config;
            std::uint64_t key = 0;
            std::uint32_t numRecords = 0;
            int startedOnIdx = -1;      ///< -1 = not started yet

            bool operator==(const SavedPending &) const = default;
        };
        std::unordered_map<SeqNum, SavedPending> pending;

        std::unordered_set<SeqNum> suppressed;
        std::unordered_set<std::uint64_t> mappedKeys;
        std::unordered_set<std::uint64_t> offloadedKeys;
        std::unordered_set<std::uint64_t> failedKeys;

        DynaSpamStats dstats;

        bool operator==(const SavedState &) const = default;
    };

    /** Capture the full controller state into @p out. */
    void save(SavedState &out) const;

    /** Restore a previously saved state (see SavedState for the
     *  geometry requirements). */
    void restore(const SavedState &in);

  private:
    /** Check the predicted-path walk against the oracle records. */
    bool walkMatchesOracle(const TraceWalk &walk, SeqNum trace_idx) const;

    /** Pick a fabric for @p config: loaded > free > LRU; reconfigures
     *  the victim when needed (charging configuration latency). */
    fabric::Fabric *
    selectFabric(const std::shared_ptr<const fabric::FabricConfig> &config,
                 Cycle now);

    DynaSpamParams params;
    const isa::DynamicTrace &trace;
    ooo::BranchPredictor &bpred;
    ooo::StoreSetPredictor &storeSets;
    mem::MemoryHierarchy &hierarchy;

    TCache tCache;
    ConfigCache cfgCache;
    std::vector<std::unique_ptr<fabric::Fabric>> fabricPool;

    std::unique_ptr<MappingSession> session;
    std::unique_ptr<MappingPolicyBase> policy;
    bool mappingInProgress = false;
    std::uint64_t mappingKey = 0;
    Cycle lastMappingStart = 0;

    /** Pending offload: trace_idx -> (config, key, num records). The
     *  fabric is selected when the invocation starts, not at fetch, so
     *  queued invocations of the previous configuration are not killed
     *  by an early reconfiguration. */
    struct PendingInvocation
    {
        std::shared_ptr<const fabric::FabricConfig> config;
        std::uint64_t key = 0;
        std::uint32_t numRecords = 0;
        /** The fabric that executed it (set at offloadStart). */
        fabric::Fabric *startedOn = nullptr;
    };
    std::unordered_map<SeqNum, PendingInvocation> pending;

    /** After a squash at this record, execute it on the host once. */
    std::unordered_set<SeqNum> suppressed;

    std::unordered_set<std::uint64_t> mappedKeys;
    std::unordered_set<std::uint64_t> offloadedKeys;
    /** Traces whose mapping failed: don't retry them (an infeasible
     *  schedule stays infeasible while the trace shape is stable). */
    std::unordered_set<std::uint64_t> failedKeys;

    trace::TraceSink *tsink = nullptr;
    WarmupGuard *guard = nullptr;

    DynaSpamStats dstats;
};

} // namespace dynaspam::core

#endif // DYNASPAM_CORE_CONTROLLER_HH
