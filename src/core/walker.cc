/**
 * @file
 * Predicted-path trace walker implementation.
 */

#include "core/walker.hh"

#include "core/tcache.hh"
#include "isa/opcodes.hh"

namespace dynaspam::core
{

TraceKeyProbe
probeTraceKey(const isa::Program &program,
              const ooo::BranchPredictor &bpred, InstAddr anchor_pc,
              unsigned max_len)
{
    TraceKeyProbe probe;
    if (anchor_pc >= program.size())
        return probe;
    if (!program.inst(anchor_pc).isCondBranch())
        return probe;

    std::uint64_t history = bpred.speculativeHistory();
    bool outcomes[3] = {};
    unsigned num_outcomes = 0;

    InstAddr pc = anchor_pc;
    unsigned steps = 0;
    const unsigned step_cap = 4 * max_len;

    // Mirror of walkPredictedPath's phase 1: only the conditions that can
    // invalidate the walk or feed the key are evaluated; the extent
    // bookkeeping is skipped. Keep the two loops in lockstep when editing.
    while (steps < step_cap && num_outcomes < 3) {
        if (pc >= program.size())
            return probe;
        const isa::StaticInst &inst = program.inst(pc);
        if (inst.isHalt() || inst.op == isa::Opcode::RET)
            return probe;

        InstAddr next = pc + 1;
        if (inst.isControl()) {
            auto pred = bpred.peekWithHistory(pc, inst, history);
            if (inst.isCondBranch()) {
                outcomes[num_outcomes++] = pred.taken;
                history = (history << 1) | (pred.taken ? 1 : 0);
            }
            if (pred.taken) {
                if (!pred.targetKnown)
                    return probe;
                next = pred.target;
            }
        }

        pc = next;
        steps++;
    }

    if (num_outcomes < 3)
        return probe;

    probe.key = makeTraceKey(anchor_pc, outcomes[0], outcomes[1],
                             outcomes[2]);
    probe.valid = true;
    return probe;
}

TraceWalk
walkPredictedPath(const isa::Program &program,
                  const ooo::BranchPredictor &bpred, InstAddr anchor_pc,
                  unsigned max_len)
{
    TraceWalk walk;
    if (anchor_pc >= program.size())
        return walk;
    if (!program.inst(anchor_pc).isCondBranch())
        return walk;

    std::uint64_t history = bpred.speculativeHistory();
    std::vector<bool> cond_outcomes;

    InstAddr pc = anchor_pc;
    unsigned steps = 0;
    const unsigned step_cap = 4 * max_len;

    // Phase 1: collect the trace extent (up to the 4th conditional branch
    // or max_len instructions). Phase 2 (extent full): keep walking only
    // to find the remaining conditional-branch outcomes for the key.
    while (steps < step_cap && cond_outcomes.size() < 3) {
        if (pc >= program.size())
            return walk;
        const isa::StaticInst &inst = program.inst(pc);
        if (inst.isHalt() || inst.op == isa::Opcode::RET)
            return walk;

        const bool in_extent = walk.pcs.size() < max_len;
        InstAddr next = pc + 1;
        bool taken = false;

        if (inst.isControl()) {
            auto pred = bpred.peekWithHistory(pc, inst, history);
            taken = pred.taken;
            if (inst.isCondBranch()) {
                if (cond_outcomes.size() >= 3 && in_extent) {
                    // This would be the 4th branch: the extent stops
                    // just before it.
                    break;
                }
                cond_outcomes.push_back(taken);
                history = (history << 1) | (taken ? 1 : 0);
            }
            if (taken) {
                if (!pred.targetKnown)
                    return walk;    // cannot follow an unknown target
                next = pred.target;
            }
        }

        if (in_extent) {
            walk.pcs.push_back(pc);
            walk.predictedTaken.push_back(taken);
            if (inst.isCondBranch())
                walk.numCondBranches++;
        }

        pc = next;
        steps++;
    }

    if (cond_outcomes.size() < 3)
        return walk;

    // Extend the extent past the third branch up to the fourth branch or
    // the length cap.
    while (walk.pcs.size() < max_len && steps < step_cap) {
        if (pc >= program.size())
            break;
        const isa::StaticInst &inst = program.inst(pc);
        if (inst.isHalt() || inst.op == isa::Opcode::RET)
            break;
        if (inst.isCondBranch())
            break;      // the fourth branch ends the trace

        InstAddr next = pc + 1;
        bool taken = false;
        if (inst.isControl()) {
            auto pred = bpred.peekWithHistory(pc, inst, history);
            taken = pred.taken;
            if (taken) {
                if (!pred.targetKnown)
                    break;
                next = pred.target;
            }
        }
        walk.pcs.push_back(pc);
        walk.predictedTaken.push_back(taken);
        pc = next;
        steps++;
    }

    // If the length cap truncated the extent mid-block, trim back so the
    // trace ends just before a conditional branch: the next dynamic
    // record is then again a trace anchor, letting consecutive
    // invocations chain back-to-back instead of leaving a partial block
    // for the host. (The paper flags smarter instruction selection at
    // the cap as future work, Section 5.2.)
    if (walk.pcs.size() == max_len) {
        std::size_t last_branch = walk.pcs.size();
        for (std::size_t i = walk.pcs.size(); i-- > 1;) {
            if (program.inst(walk.pcs[i]).isCondBranch()) {
                last_branch = i;
                break;
            }
        }
        if (last_branch < walk.pcs.size()) {
            walk.pcs.resize(last_branch);
            walk.predictedTaken.resize(last_branch);
            walk.numCondBranches = 0;
            for (InstAddr trace_pc : walk.pcs) {
                if (program.inst(trace_pc).isCondBranch())
                    walk.numCondBranches++;
            }
        }
    }

    walk.key = makeTraceKey(anchor_pc, cond_outcomes[0], cond_outcomes[1],
                            cond_outcomes[2]);
    walk.valid = !walk.pcs.empty();
    return walk;
}

} // namespace dynaspam::core
