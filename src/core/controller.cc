/**
 * @file
 * DynaSpAM controller implementation.
 */

#include "core/controller.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace dynaspam::core
{

DynaSpamController::DynaSpamController(const DynaSpamParams &p,
                                       const isa::DynamicTrace &t,
                                       ooo::BranchPredictor &bp,
                                       ooo::StoreSetPredictor &ss,
                                       mem::MemoryHierarchy &h)
    : params(p), trace(t), bpred(bp), storeSets(ss), hierarchy(h),
      tCache(p.tcache), cfgCache(p.configCache)
{
    if (params.numFabrics == 0)
        fatal("DynaSpAM needs at least one fabric");
    for (unsigned i = 0; i < params.numFabrics; i++) {
        fabricPool.push_back(std::make_unique<fabric::Fabric>(
            params.fabricParams, hierarchy, storeSets));
    }
    const unsigned pes = params.fabricParams.pesPerStripe();
    if (params.mapper == MapperKind::ResourceAware)
        policy = std::make_unique<ResourceAwarePolicy>(pes);
    else
        policy = std::make_unique<NaiveOrderPolicy>(pes);
}

bool
DynaSpamController::walkMatchesOracle(const TraceWalk &walk,
                                      SeqNum trace_idx) const
{
    if (trace_idx + walk.pcs.size() > trace.size())
        return false;
    for (std::size_t i = 0; i < walk.pcs.size(); i++) {
        const isa::DynRecord &rec = trace[trace_idx + i];
        if (rec.pc != walk.pcs[i])
            return false;
        const isa::StaticInst &inst = trace.program().inst(rec.pc);
        if (inst.isControl() && rec.taken != walk.predictedTaken[i])
            return false;
    }
    return true;
}

fabric::Fabric *
DynaSpamController::selectFabric(
    const std::shared_ptr<const fabric::FabricConfig> &config, Cycle now)
{
    // Prefer a fabric already holding the configuration.
    for (auto &fab : fabricPool) {
        if (fab->hasConfig(config->key))
            return fab.get();
    }

    // Configuration miss: from here on, which fabric is picked (a free
    // one vs. the LRU victim) depends on the pool size once any fabric
    // holds a configuration. The very first configure lands on pool[0]
    // for every pool size, so it is still prefix-invariant.
    if (guard && guard->numFabricsDiverges && !guard->fired) {
        for (auto &fab : fabricPool) {
            if (fab->configured()) {
                guard->fired = true;
                break;
            }
        }
    }

    // Otherwise an unconfigured fabric, else the LRU one.
    fabric::Fabric *victim = nullptr;
    for (auto &fab : fabricPool) {
        if (!fab->configured()) {
            victim = fab.get();
            break;
        }
    }
    if (!victim) {
        victim = fabricPool.front().get();
        for (auto &fab : fabricPool) {
            if (fab->lastUseCycle() < victim->lastUseCycle())
                victim = fab.get();
        }
    }

    // Reconfigure the victim; its outgoing configuration's lifetime is a
    // Table 5 sample.
    if (victim->invocationsSinceConfigure() > 0) {
        dstats.lifetimeSum += victim->invocationsSinceConfigure();
        dstats.lifetimeCount++;
    }
    const Cycle ready = victim->configure(config, now);
    dstats.reconfigurations++;
    if (trace::compiledIn() && tsink)
        tsink->span(trace::Mark::Reconfigure, now, ready, config->key);
    return victim;
}

ooo::FetchDirective
DynaSpamController::beforeFetch(SeqNum trace_idx, Cycle now)
{
    ooo::FetchDirective directive;

    // Only conditional branches anchor traces, so only they can carry a
    // suppression or an offload — bail before any hash probe otherwise.
    const isa::DynRecord &rec = trace[trace_idx];
    const isa::StaticInst &inst = trace.program().inst(rec.pc);
    if (!inst.isCondBranch())
        return directive;

    if (!suppressed.empty() && suppressed.count(trace_idx)) {
        dstats.offloadSuppressed++;
        // This record's invocation just squashed: run it on the host.
        // (The entry is consumed at commit, not here, because fetch can
        // be re-run after an unrelated squash.)
        return directive;
    }

    if (mappingInProgress)
        return directive;

    // Build the T-Cache index from the predictions for this and the next
    // two branches. The key-only probe avoids materialising the extent
    // vectors for the (overwhelmingly common) cold case; isHot is pure,
    // and probe.key equals the full walk's key, so behaviour is identical.
    TraceKeyProbe probe = probeTraceKey(trace.program(), bpred, rec.pc,
                                        params.traceLength);
    if (!probe.valid || !tCache.isHot(probe.key))
        return directive;

    TraceWalk walk = walkPredictedPath(trace.program(), bpred, rec.pc,
                                       params.traceLength);
    if (!walk.valid)
        return directive;

    dstats.tracesConsidered++;
    if (trace::compiledIn() && tsink)
        tsink->mark(trace::Mark::TCacheHit, now, walk.key, trace_idx);

    auto config = cfgCache.find(walk.key);
    if (config) {
        const bool ready = cfgCache.recordPrediction(walk.key);
        // Offload decision point: with the counter saturated, the
        // outcome consults enableOffload, and an issued offload's fabric
        // timing consults memorySpeculation.
        if (guard && ready &&
            (guard->offloadDiverges ||
             (params.enableOffload && guard->memSpecDiverges))) {
            guard->fired = true;
        }
        if (!ready || !params.enableOffload) {
            dstats.offloadBelowThreshold++;
            return directive;
        }

        // Offload. The fabric is chosen when the invocation starts; a
        // stale config whose extent no longer matches the oracle path is
        // still dispatched — the path mismatch squashes in the fabric,
        // mirroring the hardware.
        directive.kind = ooo::FetchDirective::Kind::Offload;
        directive.numRecords = config->numRecords;
        directive.liveIns = config->liveIns;
        directive.liveOuts.reserve(config->liveOuts.size());
        for (const auto &lo : config->liveOuts)
            directive.liveOuts.push_back(lo.arch);
        directive.hasStores = config->hasStores;

        pending[trace_idx] =
            PendingInvocation{config, walk.key, config->numRecords};
        dstats.offloadsIssued++;
        return directive;
    }

    // Not mapped yet: start a mapping phase if the predicted path holds
    // against the oracle (a mispredicted path would abort the mapping
    // anyway — Section 3.1). Traces that already failed to map are not
    // retried.
    dstats.hotNotMapped++;
    if (failedKeys.count(walk.key))
        return directive;
    if (now < lastMappingStart + params.mappingCooldown &&
        dstats.mappingsStarted > 0) {
        return directive;   // rate-limit reconfiguration pressure
    }
    if (!walkMatchesOracle(walk, trace_idx))
        return directive;
    if (walk.pcs.size() < 4)
        return directive;   // too short to be worth a configuration

    // Mapping begins: the session's schedule is driven by the installed
    // policy, so the mapper kind is consulted from here on.
    if (guard && guard->mapperDiverges)
        guard->fired = true;

    session = std::make_unique<MappingSession>(
        params.fabricParams, trace_idx,
        std::uint32_t(walk.pcs.size()), walk.key);
    policy->arm(session.get(), trace_idx);
    mappingInProgress = true;
    mappingKey = walk.key;
    lastMappingStart = now;

    directive.kind = ooo::FetchDirective::Kind::BeginMapping;
    directive.numRecords = std::uint32_t(walk.pcs.size());
    directive.policy = policy.get();
    // Counted at directive issue so aborts that fire before the first
    // trace instruction dispatches still balance the books.
    dstats.mappingsStarted++;
    return directive;
}

void
DynaSpamController::mappingStarted(SeqNum, Cycle)
{
}

void
DynaSpamController::mappingFinished(SeqNum trace_idx, Cycle now)
{
    if (!session)
        return;
    if (trace::compiledIn() && tsink) {
        tsink->span(trace::Mark::Mapping, lastMappingStart, now,
                    mappingKey, trace_idx);
    }
    auto config = session->buildConfig(trace);
    if (config) {
        const auto outcome = cfgCache.insert(mappingKey,
                                             std::move(*config));
        if (trace::compiledIn() && tsink) {
            if (outcome.evicted) {
                tsink->mark(trace::Mark::ConfigEvict, now,
                            outcome.evictedKey);
            }
            tsink->mark(trace::Mark::ConfigFill, now, mappingKey,
                        trace_idx);
        }
        if (mappedKeys.insert(mappingKey).second)
            dstats.distinctMappedTraces++;
        dstats.mappingsCompleted++;
    } else {
        dstats.mappingsDiscarded++;
        failedKeys.insert(mappingKey);
    }
    policy->disarm();
    session.reset();
    mappingInProgress = false;
}

void
DynaSpamController::mappingAborted(SeqNum trace_idx, Cycle now)
{
    if (!session)
        return;
    if (trace::compiledIn() && tsink) {
        tsink->span(trace::Mark::MappingAbort, lastMappingStart, now,
                    mappingKey, trace_idx);
    }
    dstats.mappingsAborted++;
    policy->disarm();
    session.reset();
    mappingInProgress = false;
}

ooo::InvocationResult
DynaSpamController::offloadStart(SeqNum trace_idx, std::uint32_t num_records,
                                 Cycle now,
                                 const std::vector<Cycle> &live_in_ready,
                                 Cycle mem_safe)
{
    auto it = pending.find(trace_idx);
    if (it == pending.end())
        panic("offloadStart for unknown invocation at ", trace_idx);
    const PendingInvocation &inv = it->second;

    ooo::InvocationResult result;
    fabric::Fabric *fab = selectFabric(inv.config, now);
    it->second.startedOn = fab;
    fabric::FabricExecResult fx =
        fab->execute(trace, trace_idx, live_in_ready, mem_safe, now);
    (void)num_records;
    if (trace::compiledIn() && tsink) {
        tsink->span(trace::Mark::Invocation, now, fx.completeCycle,
                    inv.key, trace_idx);
    }

    result.squashed = fx.squashed;
    result.completeCycle = fx.completeCycle;
    result.liveOutReady = std::move(fx.liveOutReady);
    result.storeEvents.reserve(fx.storeEvents.size());
    for (const auto &ev : fx.storeEvents)
        result.storeEvents.emplace_back(ev.addr, ev.pc);
    return result;
}

void
DynaSpamController::invocationCommitted(SeqNum trace_idx, Cycle now)
{
    dstats.invocationsCommitted++;
    if (trace::compiledIn() && tsink)
        tsink->mark(trace::Mark::InvokeCommit, now, 0, trace_idx);
    auto it = pending.find(trace_idx);
    if (it != pending.end()) {
        dstats.instsOffloaded += it->second.numRecords;
        offloadedKeys.insert(it->second.key);
        if (it->second.startedOn)
            it->second.startedOn->noteCommitted(trace_idx);
        pending.erase(it);
    }
}

void
DynaSpamController::invocationSquashed(SeqNum trace_idx, Cycle now,
                                       bool at_fault)
{
    if (trace::compiledIn() && tsink) {
        tsink->mark(trace::Mark::InvokeSquash, now, 0, trace_idx,
                    at_fault ? 1 : 0);
    }
    if (at_fault) {
        dstats.invocationsSquashed++;
        suppressed.insert(trace_idx);
        auto pit = pending.find(trace_idx);
        if (pit != pending.end())
            cfgCache.penalize(pit->second.key);
    } else {
        dstats.invocationsCollateral++;
    }
    auto it = pending.find(trace_idx);
    if (it != pending.end()) {
        // Rewind the ghost effects this invocation left in the fabric's
        // pipelining state (squash notifications arrive youngest-first).
        if (it->second.startedOn)
            it->second.startedOn->rollback(trace_idx);
        pending.erase(it);
    }
}

void
DynaSpamController::onCommitControl(InstAddr pc, bool taken,
                                    SeqNum trace_idx, Cycle)
{
    const isa::StaticInst &inst = trace.program().inst(pc);
    if (inst.isCondBranch())
        tCache.commitBranch(pc, taken);
    // A suppressed record that has now committed on the host can be
    // offloaded again in the future.
    suppressed.erase(trace_idx);
}

void
DynaSpamController::setTraceSink(trace::TraceSink *sink)
{
    tsink = sink;
    for (auto &fab : fabricPool)
        fab->setTraceSink(sink);
}

void
DynaSpamController::finalizeStats()
{
    for (auto &fab : fabricPool) {
        if (fab->invocationsSinceConfigure() > 0) {
            dstats.lifetimeSum += fab->invocationsSinceConfigure();
            dstats.lifetimeCount++;
        }
    }
    dstats.distinctOffloadedTraces = offloadedKeys.size();
}

void
DynaSpamController::save(SavedState &out) const
{
    tCache.save(out.tcache);
    cfgCache.save(out.configCache);
    out.fabrics.resize(fabricPool.size());
    for (std::size_t i = 0; i < fabricPool.size(); i++)
        fabricPool[i]->save(out.fabrics[i]);

    if (session)
        out.session = *session;
    else
        out.session.reset();
    policy->save(out.policy);
    out.mappingInProgress = mappingInProgress;
    out.mappingKey = mappingKey;
    out.lastMappingStart = lastMappingStart;

    out.pending.clear();
    for (const auto &[seq, inv] : pending) {
        int idx = -1;
        for (std::size_t i = 0; i < fabricPool.size(); i++) {
            if (fabricPool[i].get() == inv.startedOn) {
                idx = int(i);
                break;
            }
        }
        out.pending.emplace(seq, SavedState::SavedPending{
            inv.config, inv.key, inv.numRecords, idx});
    }

    out.suppressed = suppressed;
    out.mappedKeys = mappedKeys;
    out.offloadedKeys = offloadedKeys;
    out.failedKeys = failedKeys;
    out.dstats = dstats;
}

void
DynaSpamController::restore(const SavedState &in)
{
    tCache.restore(in.tcache);
    cfgCache.restore(in.configCache);
    // Pool sizes may differ across a fork group (see SavedState docs);
    // fabrics beyond the common prefix are untouched on either side.
    const std::size_t n = std::min(in.fabrics.size(), fabricPool.size());
    for (std::size_t i = 0; i < n; i++)
        fabricPool[i]->restore(in.fabrics[i]);

    if (in.session)
        session = std::make_unique<MappingSession>(*in.session);
    else
        session.reset();
    policy->restore(in.policy, session.get());
    mappingInProgress = in.mappingInProgress;
    mappingKey = in.mappingKey;
    lastMappingStart = in.lastMappingStart;

    pending.clear();
    for (const auto &[seq, sp] : in.pending) {
        if (sp.startedOnIdx >= int(fabricPool.size()))
            panic("restore: pending invocation on out-of-range fabric");
        pending.emplace(seq, PendingInvocation{
            sp.config, sp.key, sp.numRecords,
            sp.startedOnIdx >= 0
                ? fabricPool[std::size_t(sp.startedOnIdx)].get()
                : nullptr});
    }

    suppressed = in.suppressed;
    mappedKeys = in.mappedKeys;
    offloadedKeys = in.offloadedKeys;
    failedKeys = in.failedKeys;
    dstats = in.dstats;
}

void
DynaSpamController::exportStats(StatRegistry &reg) const
{
    reg.counter("dynaspam.tracesConsidered").inc(dstats.tracesConsidered);
    reg.counter("dynaspam.mappingsStarted").inc(dstats.mappingsStarted);
    reg.counter("dynaspam.mappingsCompleted").inc(dstats.mappingsCompleted);
    reg.counter("dynaspam.mappingsAborted").inc(dstats.mappingsAborted);
    reg.counter("dynaspam.mappingsDiscarded").inc(dstats.mappingsDiscarded);
    reg.counter("dynaspam.offloadsIssued").inc(dstats.offloadsIssued);
    reg.counter("dynaspam.invocationsCommitted")
        .inc(dstats.invocationsCommitted);
    reg.counter("dynaspam.invocationsSquashed")
        .inc(dstats.invocationsSquashed);
    reg.counter("dynaspam.reconfigurations").inc(dstats.reconfigurations);
    reg.counter("dynaspam.distinctMappedTraces")
        .inc(dstats.distinctMappedTraces);
    reg.counter("dynaspam.distinctOffloadedTraces")
        .inc(dstats.distinctOffloadedTraces);
    reg.counter("dynaspam.instsOffloaded").inc(dstats.instsOffloaded);
    for (std::size_t i = 0; i < fabricPool.size(); i++)
        fabricPool[i]->exportStats(reg, "fabric" + std::to_string(i));
}

} // namespace dynaspam::core
