/**
 * @file
 * T-Cache: the trace detection structure (Section 3.1).
 *
 * On commit of each conditional branch, an internal history buffer tracks
 * the previous three branch results. The T-Cache builds an index from the
 * PC of the earliest of those branches plus the three outcomes and
 * increments a saturating counter. When the counter exceeds a preset
 * threshold, the trace is flagged hot. Counters are periodically cleared
 * so infrequently executing traces do not occupy the spatial fabric.
 */

#ifndef DYNASPAM_CORE_TCACHE_HH
#define DYNASPAM_CORE_TCACHE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dynaspam::check
{
class StructureAuditor;
class FaultInjector;
} // namespace dynaspam::check

namespace dynaspam::core
{

/** Build a trace key from the anchor branch PC and three outcomes. */
inline std::uint64_t
makeTraceKey(InstAddr anchor_pc, bool o1, bool o2, bool o3)
{
    return (std::uint64_t(anchor_pc) << 3) | (std::uint64_t(o1)) |
           (std::uint64_t(o2) << 1) | (std::uint64_t(o3) << 2);
}

/** T-Cache configuration. */
struct TCacheParams
{
    std::size_t entries = 256;          ///< direct-mapped entries
    unsigned counterBits = 4;           ///< saturating counter width
    unsigned hotThreshold = 12;         ///< counter value marking hot
    std::uint64_t clearInterval = 100000;   ///< branch commits per clear
};

/** The trace-detection cache. */
class TCache
{
  public:
    explicit TCache(const TCacheParams &params = TCacheParams{});

    /**
     * Record a committed conditional branch (trains the history buffer
     * and the saturation counters).
     */
    void commitBranch(InstAddr pc, bool taken);

    /** @return true when the trace identified by @p key is hot. */
    bool isHot(std::uint64_t key) const;

    std::uint64_t trainings() const { return statTrainings; }
    std::uint64_t clears() const { return statClears; }

    struct Entry
    {
        std::uint64_t key = 0;
        unsigned counter = 0;
        bool hot = false;
        bool valid = false;

        bool operator==(const Entry &) const = default;
    };

    /** One slot of the committed-branch history window. */
    struct BranchRec
    {
        InstAddr pc = 0;
        bool taken = false;

        bool operator==(const BranchRec &) const = default;
    };

    /** Complete mutable T-Cache state (geometry is a parameter). */
    struct SavedState
    {
        std::vector<Entry> entries;
        std::array<BranchRec, 3> history{};
        unsigned historyCount = 0;
        std::uint64_t commitCount = 0;
        std::uint64_t trainings = 0;
        std::uint64_t clears = 0;

        bool operator==(const SavedState &) const = default;
    };

    void
    save(SavedState &out) const
    {
        out.entries = entries;
        out.history = history;
        out.historyCount = historyCount;
        out.commitCount = commitCount;
        out.trainings = statTrainings;
        out.clears = statClears;
    }

    void
    restore(const SavedState &in)
    {
        entries = in.entries;
        history = in.history;
        historyCount = in.historyCount;
        commitCount = in.commitCount;
        statTrainings = in.trainings;
        statClears = in.clears;
    }

  private:
    /** The structure auditor inspects entries directly. */
    friend class dynaspam::check::StructureAuditor;
    /** The fault-injection self-test seeds violations directly. */
    friend class dynaspam::check::FaultInjector;

    std::size_t indexOf(std::uint64_t key) const
    {
        return std::size_t(key % entries.size());
    }

    TCacheParams params;
    std::vector<Entry> entries;

    /** Last three committed conditional branches, oldest first. A fixed
     *  array instead of a deque: this is touched on every committed
     *  conditional branch, and two 16-byte moves beat deque node math. */
    std::array<BranchRec, 3> history{};
    unsigned historyCount = 0;  ///< valid slots, saturates at 3

    std::uint64_t commitCount = 0;
    std::uint64_t statTrainings = 0;
    std::uint64_t statClears = 0;
};

} // namespace dynaspam::core

#endif // DYNASPAM_CORE_TCACHE_HH
