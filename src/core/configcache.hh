/**
 * @file
 * Configuration cache (Section 3.1, Table 4: 16-entry, direct mapped,
 * 3-bit saturation counter, threshold 4).
 *
 * Holds finished mappings keyed by trace identity. A newly mapped trace
 * starts with a zero counter; the counter increments each time the fetch
 * stage predicts the trace again, and offloading begins only once it
 * reaches the threshold — filtering out traces that appear only a few
 * times but would trigger reconfiguration overhead. Counters are
 * periodically cleared alongside the T-Cache.
 */

#ifndef DYNASPAM_CORE_CONFIGCACHE_HH
#define DYNASPAM_CORE_CONFIGCACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "fabric/config.hh"

namespace dynaspam::check
{
class StructureAuditor;
class FaultInjector;
} // namespace dynaspam::check

namespace dynaspam::core
{

/** Configuration-cache parameters (Table 4 defaults). */
struct ConfigCacheParams
{
    std::size_t entries = 16;
    unsigned counterBits = 3;
    unsigned offloadThreshold = 4;
    std::uint64_t clearInterval = 100000;   ///< lookups per counter clear
};

/** The configuration cache. */
class ConfigCache
{
  public:
    explicit ConfigCache(const ConfigCacheParams &p = ConfigCacheParams{});

    /** Outcome of an insert(): reports the colliding eviction, if any,
     *  so the caller — which knows the current cycle — can trace it. */
    struct InsertOutcome
    {
        bool evicted = false;
        std::uint64_t evictedKey = 0;
    };

    /** Store a completed mapping, evicting any colliding entry. */
    InsertOutcome insert(std::uint64_t key, fabric::FabricConfig config);

    /**
     * @return the config for @p key, or nullptr. Shared ownership so an
     * in-flight invocation survives a colliding eviction between its
     * dispatch and its start.
     */
    std::shared_ptr<const fabric::FabricConfig>
    find(std::uint64_t key) const;

    /** @return true when @p key is present (mapped). */
    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    /**
     * The trace was predicted again by fetch: bump its counter.
     * @return true once the counter has reached the offload threshold.
     */
    bool recordPrediction(std::uint64_t key);

    /** @return true when @p key is present and ready to offload. */
    bool readyToOffload(std::uint64_t key) const;

    /**
     * Penalize @p key after an at-fault squash: its saturation counter
     * resets, so the trace must re-earn the offload threshold before it
     * occupies the fabric again. Chronic squashers throttle themselves.
     */
    void penalize(std::uint64_t key);

    std::uint64_t insertions() const { return statInsertions; }
    std::uint64_t evictions() const { return statEvictions; }

    struct Entry
    {
        bool valid = false;
        std::uint64_t key = 0;
        unsigned counter = 0;
        std::shared_ptr<const fabric::FabricConfig> config;

        /** Configs are immutable once inserted, so sharing the pointer
         *  is value equality for snapshot purposes. */
        bool operator==(const Entry &) const = default;
    };

    /**
     * Complete mutable cache state. FabricConfig objects are immutable
     * after insertion, so entries share ownership with the live cache
     * rather than deep-copying the configs.
     */
    struct SavedState
    {
        std::vector<Entry> entries;
        std::uint64_t lookups = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;

        bool operator==(const SavedState &) const = default;
    };

    void
    save(SavedState &out) const
    {
        out.entries = entries;
        out.lookups = lookups;
        out.insertions = statInsertions;
        out.evictions = statEvictions;
    }

    void
    restore(const SavedState &in)
    {
        entries = in.entries;
        lookups = in.lookups;
        statInsertions = in.insertions;
        statEvictions = in.evictions;
    }

  private:
    /** The structure auditor inspects entries directly. */
    friend class dynaspam::check::StructureAuditor;
    /** The fault-injection self-test seeds violations directly. */
    friend class dynaspam::check::FaultInjector;

    std::size_t indexOf(std::uint64_t key) const
    {
        // Mix the outcome bits into the index so traces anchored at the
        // same branch with different outcomes spread across entries.
        return std::size_t((key ^ (key >> 3)) % entries.size());
    }

    ConfigCacheParams params;
    std::vector<Entry> entries;
    std::uint64_t lookups = 0;

    std::uint64_t statInsertions = 0;
    std::uint64_t statEvictions = 0;
};

} // namespace dynaspam::core

#endif // DYNASPAM_CORE_CONFIGCACHE_HH
