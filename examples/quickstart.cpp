/**
 * @file
 * Quickstart: build a tiny hot-loop program with the ProgramBuilder, run
 * it on the baseline OOO pipeline and on the full DynaSpAM system, and
 * print what the framework did (detection, mapping, offloading) plus the
 * performance and energy deltas.
 *
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "isa/program.hh"
#include "sim/system.hh"

using namespace dynaspam;
using isa::intReg;

int
main()
{
    // --- 1. Write a program against the micro-ISA ------------------------
    // A dot-product-flavoured hot loop: two loads, a multiply-accumulate,
    // pointer updates, and a loop branch.
    isa::ProgramBuilder b("quickstart");
    b.movi(intReg(1), 0);           // i = 0
    b.movi(intReg(2), 5000);        // n
    b.movi(intReg(3), 0x10000);     // a[]
    b.movi(intReg(4), 0x80000);     // b[]
    b.movi(intReg(8), 0);           // acc
    b.movi(intReg(7), 0);           // constant 0 (guard)
    b.label("loop");
    b.beq(intReg(7), intReg(2), "skip");    // never taken
    b.ld(intReg(9), intReg(3), 0);
    b.ld(intReg(10), intReg(4), 0);
    b.mul(intReg(11), intReg(9), intReg(10));
    b.beq(intReg(7), intReg(2), "skip");    // never taken
    b.add(intReg(8), intReg(8), intReg(11));
    b.label("skip");
    b.addi(intReg(3), intReg(3), 8);
    b.addi(intReg(4), intReg(4), 8);
    b.addi(intReg(1), intReg(1), 1);
    b.blt(intReg(1), intReg(2), "loop");
    b.halt();
    isa::Program program = b.build();

    // --- 2. Run it on the baseline 8-issue OOO pipeline ------------------
    sim::System baseline(
        sim::SystemConfig::make(sim::SystemMode::BaselineOoo));
    auto base = baseline.run(program);
    std::printf("baseline OOO : %8llu cycles  (IPC %.2f, %.1f nJ)\n",
                static_cast<unsigned long long>(base.cycles), base.ipc(),
                base.energyTotal() / 1e3);

    // --- 3. Run it with DynaSpAM attached ---------------------------------
    sim::System dynaspam_sys(
        sim::SystemConfig::make(sim::SystemMode::AccelSpec));
    auto accel = dynaspam_sys.run(program);
    std::printf("with DynaSpAM: %8llu cycles  (IPC %.2f, %.1f nJ)\n",
                static_cast<unsigned long long>(accel.cycles), accel.ipc(),
                accel.energyTotal() / 1e3);

    // --- 4. What happened inside ------------------------------------------
    const auto &d = accel.dynaspam;
    std::printf("\ntraces mapped     : %llu\n",
                static_cast<unsigned long long>(d.distinctMappedTraces));
    std::printf("invocations run   : %llu (%llu squashed)\n",
                static_cast<unsigned long long>(d.invocationsCommitted),
                static_cast<unsigned long long>(d.invocationsSquashed));
    std::printf("insts on fabric   : %llu of %llu (%.1f%%)\n",
                static_cast<unsigned long long>(accel.instsFabric),
                static_cast<unsigned long long>(accel.instsTotal),
                100.0 * double(accel.instsFabric) /
                    double(accel.instsTotal));
    std::printf("speedup           : %.2fx\n",
                double(base.cycles) / double(accel.cycles));
    std::printf("energy reduction  : %.1f%%\n",
                100.0 * (1.0 - accel.energyTotal() / base.energyTotal()));
    return 0;
}
