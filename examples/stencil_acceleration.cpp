/**
 * @file
 * Domain example: accelerating a physics stencil (the Hotspot workload).
 *
 * Runs the HS kernel — an iterative 5-point temperature stencil, the
 * kind of loop nest the paper's introduction motivates — through every
 * system configuration and prints a side-by-side comparison, including
 * the per-component energy story (where the savings come from) and the
 * effect of the trace-length knob.
 *
 *   ./build/examples/stencil_acceleration
 */

#include <cstdio>

#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace dynaspam;
using sim::SystemConfig;
using sim::SystemMode;

int
main()
{
    workloads::Workload hs = workloads::makeHs();
    std::printf("workload: %s (%s, kernel %s), %zu static insts\n\n",
                hs.name.c_str(), hs.fullName.c_str(), hs.kernel.c_str(),
                hs.program.size());

    sim::RunResult base;
    std::printf("%-14s %10s %7s %10s %9s %9s\n", "config", "cycles",
                "IPC", "energy(nJ)", "speedup", "E-saving");
    for (auto mode :
         {SystemMode::BaselineOoo, SystemMode::MappingOnly,
          SystemMode::AccelNoSpec, SystemMode::AccelSpec}) {
        sim::System system(SystemConfig::make(mode));
        auto r = system.run(hs.program, hs.initialMemory);
        if (mode == SystemMode::BaselineOoo)
            base = r;
        std::printf("%-14s %10llu %7.2f %10.1f %8.2fx %8.1f%%\n",
                    sim::modeName(mode),
                    static_cast<unsigned long long>(r.cycles), r.ipc(),
                    r.energyTotal() / 1e3,
                    double(base.cycles) / double(r.cycles),
                    100.0 * (1.0 - r.energyTotal() / base.energyTotal()));
    }

    // Energy breakdown of baseline vs accelerated.
    sim::System accel_sys(SystemConfig::make(SystemMode::AccelSpec));
    auto accel = accel_sys.run(hs.program, hs.initialMemory);
    std::printf("\nper-component energy (nJ):\n");
    std::printf("%-14s %10s %10s\n", "component", "baseline", "dynaspam");
    for (const auto &[comp, value] : base.energy.component) {
        double a = 0.0;
        auto it = accel.energy.component.find(comp);
        if (it != accel.energy.component.end())
            a = it->second;
        std::printf("%-14s %10.1f %10.1f\n", comp.c_str(), value / 1e3,
                    a / 1e3);
    }

    // Trace-length knob.
    std::printf("\ntrace-length sweep (accel-spec):\n");
    for (unsigned len : {16u, 24u, 32u, 40u}) {
        sim::System system(
            SystemConfig::make(SystemMode::AccelSpec, len));
        auto r = system.run(hs.program, hs.initialMemory);
        std::printf("  len %2u: %8llu cycles, fabric coverage %.1f%%\n",
                    len, static_cast<unsigned long long>(r.cycles),
                    100.0 * double(r.instsFabric) / double(r.instsTotal));
    }
    return 0;
}
