/**
 * @file
 * Domain example: bringing your own kernel to DynaSpAM.
 *
 * Shows the full user workflow for a new workload: write a kernel with
 * the ProgramBuilder (here, a branchy saturating pixel transform),
 * initialize data memory, verify functional correctness against a C++
 * reference, then measure how the DynaSpAM framework handles it —
 * including what limits offloading for branchy code.
 *
 *   ./build/examples/custom_kernel
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "isa/executor.hh"
#include "isa/program.hh"
#include "memory/functional_mem.hh"
#include "sim/system.hh"

using namespace dynaspam;
using isa::intReg;

int
main()
{
    constexpr Addr src_base = 0x10000, dst_base = 0x80000;
    constexpr int n = 4000;
    constexpr std::int64_t bias = 37, cap = 200;

    // --- Data + C++ reference --------------------------------------------
    Rng rng(42);
    mem::FunctionalMemory init;
    std::vector<std::int64_t> expect(n);
    for (int i = 0; i < n; i++) {
        std::int64_t pixel = std::int64_t(rng.below(256));
        init.write64(src_base + 8 * Addr(i), std::uint64_t(pixel));
        expect[i] = std::min(pixel + bias, cap);    // saturating add
    }

    // --- The kernel ---------------------------------------------------------
    isa::ProgramBuilder b("saturate");
    b.movi(intReg(1), 0);            // i
    b.movi(intReg(2), n);
    b.movi(intReg(3), src_base);
    b.movi(intReg(4), dst_base);
    b.movi(intReg(5), bias);
    b.movi(intReg(6), cap);
    b.label("loop");
    b.ld(intReg(7), intReg(3), 0);
    b.add(intReg(7), intReg(7), intReg(5));
    b.blt(intReg(7), intReg(6), "no_clip");     // data-dependent!
    b.mov(intReg(7), intReg(6));
    b.label("no_clip");
    b.st(intReg(4), intReg(7), 0);
    b.addi(intReg(3), intReg(3), 8);
    b.addi(intReg(4), intReg(4), 8);
    b.addi(intReg(1), intReg(1), 1);
    b.blt(intReg(1), intReg(2), "loop");
    b.halt();
    isa::Program program = b.build();

    // --- Functional check -----------------------------------------------------
    mem::FunctionalMemory memory = init;
    auto fr = isa::Executor::run(program, memory);
    bool ok = fr.halted;
    for (int i = 0; ok && i < n; i++)
        ok = std::int64_t(memory.read64(dst_base + 8 * Addr(i))) ==
             expect[i];
    std::printf("functional check : %s (%llu insts)\n",
                ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(fr.instCount));
    if (!ok)
        return 1;

    // --- Timing: baseline vs DynaSpAM ------------------------------------------
    sim::System base_sys(
        sim::SystemConfig::make(sim::SystemMode::BaselineOoo));
    sim::System accel_sys(
        sim::SystemConfig::make(sim::SystemMode::AccelSpec));
    auto base = base_sys.run(program, init);
    auto accel = accel_sys.run(program, init);

    std::printf("baseline         : %llu cycles\n",
                static_cast<unsigned long long>(base.cycles));
    std::printf("dynaspam         : %llu cycles (%.2fx)\n",
                static_cast<unsigned long long>(accel.cycles),
                double(base.cycles) / double(accel.cycles));
    std::printf("fabric coverage  : %.1f%%\n",
                100.0 * double(accel.instsFabric) /
                    double(accel.instsTotal));
    std::printf("squashed invokes : %llu  <- the clip branch is data "
                "dependent, so traces built for one\n",
                static_cast<unsigned long long>(
                    accel.dynaspam.invocationsSquashed));
    std::printf("                   outcome squash when the other occurs "
                "(clip rate here: %.0f%%)\n",
                100.0 * double(std::count_if(expect.begin(), expect.end(),
                                             [&](std::int64_t v) {
                                                 return v == cap;
                                             })) /
                    double(n));
    return 0;
}
