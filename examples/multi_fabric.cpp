/**
 * @file
 * Domain example: configuration thrash and multiple fabrics.
 *
 * BFS has many unbiased branches, so many distinct traces compete for
 * the fabric and each configuration survives only a handful of
 * invocations (the paper's Table 5 shows 6.4 with one fabric). This
 * example sweeps the number of on-chip fabrics (LRU-managed) and shows
 * the configuration lifetime and reconfiguration count recovering, then
 * contrasts with KM, whose single hot trace never thrashes.
 *
 *   ./build/examples/multi_fabric
 */

#include <cstdio>

#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace dynaspam;
using sim::SystemConfig;
using sim::SystemMode;

namespace
{

void
sweep(const char *tag)
{
    workloads::Workload wl = workloads::makeWorkload(tag);
    std::printf("%s (%s):\n", wl.name.c_str(), wl.fullName.c_str());
    std::printf("  %-8s %10s %12s %14s %10s\n", "fabrics", "cycles",
                "reconfigs", "avg lifetime", "squashes");
    for (unsigned fabrics : {1u, 2u, 4u, 8u}) {
        sim::System system(
            SystemConfig::make(SystemMode::AccelSpec, 32, fabrics));
        auto r = system.run(wl.program, wl.initialMemory);
        std::printf("  %-8u %10llu %12llu %14.1f %10llu\n", fabrics,
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(
                        r.dynaspam.reconfigurations),
                    r.dynaspam.avgConfigLifetime(),
                    static_cast<unsigned long long>(
                        r.dynaspam.invocationsSquashed));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Configuration lifetime vs number of fabrics "
                "(LRU replacement)\n\n");
    sweep("BFS");   // unbiased branches: thrashes with few fabrics
    sweep("KM");    // one hot trace: lifetime is already maximal
    std::printf("paper reference: Table 5 — BFS improves from 6.4 "
                "invocations/config at 1 fabric to ~64\nat 4 fabrics "
                "(~2045 at 8); single-trace programs like KM are "
                "insensitive\n");
    return 0;
}
